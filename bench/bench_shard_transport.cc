// TCP shard transport benchmark: the pipelined streaming headline and
// the networked snapshot tier, over a real loopback worker fleet.
//
// BM_TcpStreaming is the lockstep-vs-pipelined comparison the transport
// exists for. The workload is deliberately latency-shaped: 8 roles x
// 16 accounts with *trivial* closures (r_name plus one write grant —
// no function chains to unfold), a batch cap of 1 requirement, and a
// pre-warmed fleet, so per-batch compute is a few microseconds and the
// run is dominated by how the coordinator schedules frames. Arg =
// max_in_flight: at 1 every batch pays a round trip, a scheduler
// wakeup on each side, and one writev/read syscall pair before the
// worker sees the next one; at 4/8 the worker's socket buffer always
// holds the next batch and the coordinator gathers several frames into
// each writev — the same audit collapses to back-to-back checks.
//
// BM_TcpColdFleet / BM_TcpSnapshotWarmedFleet price the snapshot tier
// on the opposite workload shape: few users, *rich* closures (stacked
// department bundles whose write-read rule keeps the fixpoint firing —
// the bench_snapshot fleet shape). Both run cache-less workers
// (persistent_cache off — every connection starts empty); the warmed
// fleet mounts the coordinator's pre-populated store over the wire and
// replays derivation logs instead of re-running fixpoints.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "core/requirement.h"
#include "net/socket.h"
#include "schema/schema.h"
#include "schema/user.h"
#include "service/analysis_service.h"
#include "service/tcp_shard.h"
#include "snapshot/snapshot_store.h"

namespace {

using namespace oodbsec;

struct Population {
  std::unique_ptr<schema::Schema> schema;
  std::unique_ptr<schema::UserRegistry> users;
  std::vector<core::Requirement> requirements;
};

std::unique_ptr<schema::Schema> ScaledBrokerSchema(int scale) {
  schema::SchemaBuilder builder;
  std::vector<schema::SchemaBuilder::AttributeSpec> attributes;
  attributes.push_back({"name", "string"});
  for (int i = 0; i < scale; ++i) {
    attributes.push_back({common::StrCat("salary", i), "int"});
    attributes.push_back({common::StrCat("budget", i), "int"});
    attributes.push_back({common::StrCat("profit", i), "int"});
  }
  builder.AddClass("Broker", std::move(attributes));
  for (int i = 0; i < scale; ++i) {
    builder.AddFunction(
        common::StrCat("checkBudget", i), {{"broker", "Broker"}}, "bool",
        common::StrCat("r_budget", i, "(broker) >= 10 * r_salary", i,
                       "(broker)"));
    builder.AddFunction(common::StrCat("calcSalary", i),
                        {{"budget", "int"}, {"profit", "int"}}, "int",
                        "budget / 10 + profit / 2");
    builder.AddFunction(
        common::StrCat("updateSalary", i), {{"broker", "Broker"}}, "null",
        common::StrCat("w_salary", i, "(broker, calcSalary", i, "(r_budget",
                       i, "(broker), r_profit", i, "(broker)))"));
  }
  auto result = std::move(builder).Build();
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

constexpr int kStreamRoles = 8;
constexpr int kStreamUsersPerRole = 32;  // 256 single-requirement batches
constexpr int kWorkers = 2;

// The latency-shaped population: each role grants only {r_name,
// w_budget_r} — distinct signatures (one per role, so batches spread
// over the fleet) whose closures are near-empty, keeping per-batch
// compute out of the measurement's way.
Population MakeStreamPopulation() {
  Population population;
  population.schema = ScaledBrokerSchema(kStreamRoles);
  population.users =
      std::make_unique<schema::UserRegistry>(*population.schema);
  for (int r = 0; r < kStreamRoles; ++r) {
    for (int k = 0; k < kStreamUsersPerRole; ++k) {
      std::string name = common::StrCat("u", r, "_", k);
      if (!population.users->AddUser(name).ok()) std::abort();
      for (const std::string& grant :
           {std::string("r_name"), common::StrCat("w_budget", r)}) {
        if (!population.users->Grant(name, grant).ok()) std::abort();
      }
      auto requirement = core::ParseRequirementString(
          common::StrCat("(", name, ", r_salary0(x) : ti)"));
      if (!requirement.ok()) std::abort();
      population.requirements.push_back(std::move(requirement).value());
    }
  }
  return population;
}

constexpr int kHeavyBaseDepts = 4;
constexpr int kHeavyRoles = 4;
constexpr int kHeavyScale = kHeavyBaseDepts + kHeavyRoles;

// The fixpoint-shaped population: every role is granted the base
// departments' full bundles plus one of its own, so each of the 4
// closures is expensive to build and no role subsumes another.
Population MakeHeavyPopulation() {
  Population population;
  population.schema = ScaledBrokerSchema(kHeavyScale);
  population.users =
      std::make_unique<schema::UserRegistry>(*population.schema);
  for (int r = 0; r < kHeavyRoles; ++r) {
    std::string name = common::StrCat("lead", r);
    if (!population.users->AddUser(name).ok()) std::abort();
    if (!population.users->Grant(name, "r_name").ok()) std::abort();
    auto grant_bundle = [&](int dept) {
      for (const std::string& grant :
           {common::StrCat("checkBudget", dept),
            common::StrCat("updateSalary", dept),
            common::StrCat("w_budget", dept),
            common::StrCat("w_profit", dept)}) {
        if (!population.users->Grant(name, grant).ok()) std::abort();
      }
    };
    for (int d = 0; d < kHeavyBaseDepts; ++d) grant_bundle(d);
    grant_bundle(kHeavyBaseDepts + r);
    auto requirement = core::ParseRequirementString(
        common::StrCat("(", name, ", r_salary0(x) : ti)"));
    if (!requirement.ok()) std::abort();
    population.requirements.push_back(std::move(requirement).value());
  }
  return population;
}

// Loopback worker threads, one listener each (ephemeral ports).
class LoopbackFleet {
 public:
  LoopbackFleet(const schema::Schema& schema,
                const std::vector<service::TcpWorkerOptions>& workers) {
    for (const service::TcpWorkerOptions& options : workers) {
      auto bound = net::Listener::Bind(0);
      if (!bound.ok()) std::abort();
      listeners_.push_back(
          std::make_unique<net::Listener>(std::move(bound).value()));
      addresses_.push_back(
          common::StrCat("127.0.0.1:", listeners_.back()->port()));
      net::Listener* listener = listeners_.back().get();
      threads_.emplace_back([listener, &schema, options, this] {
        auto status =
            service::ServeShardWorker(*listener, schema, options, &stop_);
        if (!status.ok()) std::abort();
      });
    }
  }

  ~LoopbackFleet() {
    stop_.store(true);
    for (auto& t : threads_) t.join();
  }

  const std::vector<std::string>& addresses() const { return addresses_; }

 private:
  std::vector<std::unique_ptr<net::Listener>> listeners_;
  std::vector<std::string> addresses_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
};

// Lockstep vs pipelined streaming over a warmed fleet. Arg is
// max_in_flight; 1 is the request/reply baseline.
void BM_TcpStreaming(benchmark::State& state) {
  Population population = MakeStreamPopulation();
  std::vector<service::TcpWorkerOptions> workers(kWorkers);
  LoopbackFleet fleet(*population.schema, workers);

  service::TcpTransportOptions options;
  options.workers = fleet.addresses();
  options.max_in_flight = static_cast<int>(state.range(0));
  options.max_batch_requirements = 1;  // every requirement its own batch
  service::TcpTransport transport(options);

  // Warm the workers' persistent caches: the timed loop then measures
  // pure streaming, not fixpoints.
  {
    auto warmup = transport.Run(*population.schema, *population.users,
                                population.requirements, nullptr);
    if (!warmup.ok()) std::abort();
  }

  double checks = 0;
  for (auto _ : state) {
    auto result = transport.Run(*population.schema, *population.users,
                                population.requirements, nullptr);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->reports.size());
    checks = static_cast<double>(result->merged_stats.checks);
  }
  state.counters["batches"] = kStreamRoles * kStreamUsersPerRole;
  state.counters["in_flight"] = static_cast<double>(state.range(0));
  state.counters["checks"] = checks;
}
BENCHMARK(BM_TcpStreaming)
    ->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Cache-less workers with no snapshot tier: every iteration re-runs
// all 4 rich fixpoints across the fleet. The cold baseline the
// snapshot tier is priced against.
void BM_TcpColdFleet(benchmark::State& state) {
  Population population = MakeHeavyPopulation();
  std::vector<service::TcpWorkerOptions> workers(kWorkers);
  for (auto& w : workers) w.persistent_cache = false;
  LoopbackFleet fleet(*population.schema, workers);

  service::TcpTransportOptions options;
  options.workers = fleet.addresses();
  service::TcpTransport transport(options);

  double built = 0;
  for (auto _ : state) {
    auto result = transport.Run(*population.schema, *population.users,
                                population.requirements, nullptr);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->reports.size());
    built = static_cast<double>(result->merged_stats.closures_built);
  }
  state.counters["closures_built"] = built;
}
BENCHMARK(BM_TcpColdFleet)->Unit(benchmark::kMillisecond)->UseRealTime();

// The same cache-less workers, but the coordinator serves its
// pre-populated store over the wire: every signature replays a
// derivation log fetched remotely instead of re-running its fixpoint.
void BM_TcpSnapshotWarmedFleet(benchmark::State& state) {
  Population population = MakeHeavyPopulation();
  char dir_template[] = "/tmp/oodbsec_bench_transport.XXXXXX";
  const char* dir = ::mkdtemp(dir_template);
  if (dir == nullptr) std::abort();
  auto store = snapshot::OpenDirectoryStore(dir);

  std::vector<service::TcpWorkerOptions> workers(kWorkers);
  for (auto& w : workers) w.persistent_cache = false;
  LoopbackFleet fleet(*population.schema, workers);

  service::TcpTransportOptions options;
  options.workers = fleet.addresses();
  options.snapshot_store = store;
  options.save_snapshots = true;
  service::TcpTransport transport(options);

  // Priming run: the cache-less workers build cold and persist every
  // closure back through the wire, populating the coordinator's store.
  {
    auto prime = transport.Run(*population.schema, *population.users,
                               population.requirements, nullptr);
    if (!prime.ok()) std::abort();
  }

  double hits = 0, built = 0;
  for (auto _ : state) {
    auto result = transport.Run(*population.schema, *population.users,
                                population.requirements, nullptr);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->reports.size());
    hits = static_cast<double>(result->merged_stats.snapshot_hits);
    built = static_cast<double>(result->merged_stats.closures_built);
  }
  state.counters["snapshot_hits"] = hits;
  state.counters["closures_built"] = built;

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}
BENCHMARK(BM_TcpSnapshotWarmedFleet)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
