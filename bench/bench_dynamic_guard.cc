// Experiment D1: static vs dynamic enforcement (paper §5), plus the
// incremental serving path.
//
// The static algorithm must reject any grant set whose closure violates
// a requirement — even for users who never combine the dangerous
// functions. The dynamic session guard checks the closure of the
// functions each session has actually exercised, denying exactly the
// flaw-completing query. The report measures the benign-session service
// rate under both regimes and the per-query guard overhead; the timed
// section measures guarded vs unguarded query execution, and the
// serving-path benchmarks compare the three decision tiers against the
// cold per-query baseline the pre-incremental guard paid:
//   BM_GuardColdDecide      one cold UserAnalysis per query (baseline)
//   BM_GuardDeltaRecheck    session-delta rechecks over the trigger
//                           index (warm semi-naive builds, ≥5x)
//   BM_GuardTriggerFastpath trigger pre-filter allows (≥20x)
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "dynamic/session_guard.h"
#include "query/binder.h"
#include "query/query_parser.h"
#include "text/workspace.h"

namespace {

using namespace oodbsec;

constexpr const char* kWorkspace = R"(
class Broker { name: string; salary: int; budget: int; }
function checkBudget(broker: Broker): bool =
  r_budget(broker) >= 10 * r_salary(broker);
user clerk can checkBudget, w_budget, r_name;
require (clerk, r_salary(x) : ti);
object Broker { name = "John", salary = 57, budget = 400 }
)";

std::unique_ptr<query::SelectQuery> Parse(const text::Workspace& workspace,
                                          const std::string& source) {
  auto parsed = query::ParseQueryString(source);
  if (!parsed.ok()) std::abort();
  if (!query::BindQuery(*parsed.value(), *workspace.schema).ok()) {
    std::abort();
  }
  return std::move(parsed).value();
}

void PrintReport() {
  std::printf("=== D1: static grant rejection vs dynamic session guard ===\n\n");

  // Scenario: 20 clerk sessions; the first 16 only audit (checkBudget,
  // r_name), the last 4 attempt the probing attack.
  const int kSessions = 20;
  const int kBenign = 16;

  // Static regime: the grant set's closure violates the requirement, so
  // ALL sessions are refused.
  auto workspace = text::LoadWorkspace(kWorkspace);
  if (!workspace.ok()) std::abort();
  auto report = core::CheckRequirement(*workspace->schema,
                                       *workspace->users,
                                       workspace->requirements[0]);
  if (!report.ok()) std::abort();
  int static_served = report->satisfied ? kSessions : 0;

  // Dynamic regime: each session runs its queries until denied.
  int dynamic_served = 0;
  int attacks_stopped = 0;
  auto audit = Parse(*workspace,
                     "select r_name(b), checkBudget(b) from b in Broker");
  auto probe = Parse(
      *workspace,
      "select w_budget(b, 512), checkBudget(b) from b in Broker");
  const schema::User& clerk = *workspace->users->Find("clerk");
  for (int session = 0; session < kSessions; ++session) {
    // Per-session guard so sessions are independent.
    dynamic::SessionGuard session_guard(*workspace->schema,
                                        *workspace->users,
                                        workspace->requirements);
    bool benign = session < kBenign;
    bool served = true;
    for (int q = 0; q < 3; ++q) {
      const query::SelectQuery& query =
          (benign || q < 2) ? *audit : *probe;
      auto result = session_guard.Run(*workspace->database, clerk, query);
      if (!result.ok()) {
        served = false;
        if (!benign) ++attacks_stopped;
        break;
      }
    }
    if (served && benign) ++dynamic_served;
  }

  std::printf("%-34s %-18s %s\n", "regime", "benign served",
              "attacks stopped");
  std::printf("%-34s %d/%-16d %s\n", "static A(R) on the grant set",
              static_served == 0 ? 0 : kBenign, kBenign,
              "n/a (grant refused)");
  std::printf("%-34s %d/%-16d %d/%d\n", "dynamic session guard",
              dynamic_served, kBenign, attacks_stopped,
              kSessions - kBenign);
  std::printf("\n");
}

// ---------------------------------------------------------------------
// Serving-path benchmarks: a clerk session that exercises one new audit
// function per query. Every audit reads the shared `version` attribute
// (plus two of its own), so the accumulated closure's occurrence
// classes grow with the session and the cold path re-pays the whole
// cross-root rule cascade on every query — exactly the cost the delta
// frontier skips. None of the audits touches the protected `secret`,
// so every verdict stays "allowed". The Depot-side stockLevel shares
// no attribute, call, or argument type with the requirement cone, so
// probing it rides the trigger pre-filter.

constexpr int kSessionLen = 32;

std::string ServingWorkspace() {
  std::string text = "class Ledger { secret: int; version: int";
  for (int i = 0; i < kSessionLen; ++i) {
    text += "; a" + std::to_string(i) + ": int; b" + std::to_string(i) +
            ": int";
  }
  text += "; }\n";
  text += "class Depot { city: string; stock: int; }\n";
  for (int i = 0; i < kSessionLen; ++i) {
    const std::string n = std::to_string(i);
    text += "function audit" + n + "(l: Ledger): bool = r_a" + n +
            "(l) + r_version(l) >= 2 * r_b" + n + "(l) + r_version(l);\n";
  }
  text += "function stockLevel(d: Depot): int = r_stock(d) * 2;\n";
  text += "user clerk can audit0";
  for (int i = 1; i < kSessionLen; ++i) text += ", audit" + std::to_string(i);
  text += ", stockLevel;\n";
  text += "require (clerk, r_secret(x) : ti);\n";
  return text;
}

// The session's growing function sets: {audit0}, {audit0, audit1}, ...
std::vector<std::set<std::string>> SessionPrefixes() {
  std::vector<std::set<std::string>> prefixes;
  std::set<std::string> acc;
  for (int i = 0; i < kSessionLen; ++i) {
    acc.insert("audit" + std::to_string(i));
    prefixes.push_back(acc);
  }
  return prefixes;
}

// Baseline: what the pre-incremental guard paid per query — a full cold
// UserAnalysis over the session's accumulated set. One iteration = one
// session of kSessionLen queries, every decision cold.
void BM_GuardColdDecide(benchmark::State& state) {
  auto workspace = text::LoadWorkspace(ServingWorkspace());
  if (!workspace.ok()) std::abort();
  const auto prefixes = SessionPrefixes();
  for (auto _ : state) {
    for (const auto& prefix : prefixes) {
      auto decision = dynamic::SessionGuard::ColdDecision(
          *workspace->schema, workspace->requirements, "clerk", prefix);
      if (!decision.ok() || !decision->allowed) std::abort();
      benchmark::DoNotOptimize(decision->allowed);
    }
  }
  state.SetItemsProcessed(state.iterations() * kSessionLen);
}
BENCHMARK(BM_GuardColdDecide);

// The incremental path: the same session against a fresh guard —
// one cold build for the first decision, then semi-naive delta rechecks
// warm-started from the previous session closure.
void BM_GuardDeltaRecheck(benchmark::State& state) {
  auto workspace = text::LoadWorkspace(ServingWorkspace());
  if (!workspace.ok()) std::abort();
  const auto prefixes = SessionPrefixes();
  for (auto _ : state) {
    state.PauseTiming();
    dynamic::SessionGuard guard(*workspace->schema, *workspace->users,
                                workspace->requirements);
    state.ResumeTiming();
    for (const auto& prefix : prefixes) {
      auto decision = guard.CheckFunctions("clerk", prefix);
      if (!decision.ok() || !decision->allowed) std::abort();
      benchmark::DoNotOptimize(decision->allowed);
    }
  }
  state.SetItemsProcessed(state.iterations() * kSessionLen);
}
BENCHMARK(BM_GuardDeltaRecheck);

// The trigger pre-filter: probing a function outside the requirement
// cone costs a few table probes and touches no closure.
void BM_GuardTriggerFastpath(benchmark::State& state) {
  auto workspace = text::LoadWorkspace(ServingWorkspace());
  if (!workspace.ok()) std::abort();
  dynamic::SessionGuard guard(*workspace->schema, *workspace->users,
                              workspace->requirements);
  const std::set<std::string> probe = {"stockLevel"};
  // First contact validates the empty relevant base; every call after
  // that is a pure fast-path allow.
  auto warm = guard.CheckFunctions("clerk", probe);
  if (!warm.ok() || !warm->allowed) std::abort();
  for (auto _ : state) {
    auto decision = guard.CheckFunctions("clerk", probe);
    if (!decision.ok() || !decision->allowed) std::abort();
    benchmark::DoNotOptimize(decision->allowed);
  }
  if (guard.Stats().fastpath_allows < static_cast<uint64_t>(
          state.iterations())) {
    std::abort();  // the loop must actually ride the fast path
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuardTriggerFastpath);

// Human-readable tier summary for the report section: one randomized-ish
// serving mix (12 relevant rechecks, then heavy inert/repeat traffic),
// with wall-clock per tier.
void PrintServingReport() {
  std::printf("=== serving path: decision tiers over one session ===\n\n");
  auto workspace = text::LoadWorkspace(ServingWorkspace());
  if (!workspace.ok()) std::abort();
  const auto prefixes = SessionPrefixes();

  using clock = std::chrono::steady_clock;
  auto cold_start = clock::now();
  for (const auto& prefix : prefixes) {
    auto decision = dynamic::SessionGuard::ColdDecision(
        *workspace->schema, workspace->requirements, "clerk", prefix);
    if (!decision.ok() || !decision->allowed) std::abort();
  }
  double cold_us = std::chrono::duration<double, std::micro>(
                       clock::now() - cold_start)
                       .count() /
                   kSessionLen;

  dynamic::SessionGuard guard(*workspace->schema, *workspace->users,
                              workspace->requirements);
  auto delta_start = clock::now();
  for (const auto& prefix : prefixes) {
    auto decision = guard.CheckFunctions("clerk", prefix);
    if (!decision.ok() || !decision->allowed) std::abort();
  }
  double delta_us = std::chrono::duration<double, std::micro>(
                        clock::now() - delta_start)
                        .count() /
                    kSessionLen;

  const int kProbes = 1000;
  const std::set<std::string> probe = {"stockLevel"};
  auto fast_start = clock::now();
  for (int i = 0; i < kProbes; ++i) {
    auto decision = guard.CheckFunctions("clerk", probe);
    if (!decision.ok() || !decision->allowed) std::abort();
  }
  double fast_us = std::chrono::duration<double, std::micro>(
                       clock::now() - fast_start)
                       .count() /
                   kProbes;

  dynamic::GuardStats stats = guard.Stats();
  std::printf("%-28s %12s %10s\n", "tier", "us/decision", "speedup");
  std::printf("%-28s %12.1f %10s\n", "cold rebuild (baseline)", cold_us,
              "1.0x");
  std::printf("%-28s %12.1f %9.1fx\n", "session-delta recheck", delta_us,
              cold_us / delta_us);
  std::printf("%-28s %12.2f %9.1fx\n", "trigger fast path", fast_us,
              cold_us / fast_us);
  std::printf("\nguard stats: %llu decisions, %llu fastpath, "
              "%llu delta rechecks, %llu cold builds, %llu exact hits\n\n",
              static_cast<unsigned long long>(stats.decisions),
              static_cast<unsigned long long>(stats.fastpath_allows),
              static_cast<unsigned long long>(stats.delta_rechecks),
              static_cast<unsigned long long>(stats.cold_builds),
              static_cast<unsigned long long>(stats.exact_hits));
}

void BM_GuardedQuery(benchmark::State& state) {
  auto workspace = text::LoadWorkspace(kWorkspace);
  if (!workspace.ok()) std::abort();
  dynamic::SessionGuard guard(*workspace->schema, *workspace->users,
                              workspace->requirements);
  auto audit = Parse(*workspace,
                     "select r_name(b), checkBudget(b) from b in Broker");
  const schema::User& clerk = *workspace->users->Find("clerk");
  for (auto _ : state) {
    auto result = guard.Run(*workspace->database, clerk, *audit);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->rows);
  }
}
BENCHMARK(BM_GuardedQuery);

void BM_UnguardedQuery(benchmark::State& state) {
  auto workspace = text::LoadWorkspace(kWorkspace);
  if (!workspace.ok()) std::abort();
  auto audit = Parse(*workspace,
                     "select r_name(b), checkBudget(b) from b in Broker");
  const schema::User& clerk = *workspace->users->Find("clerk");
  query::QueryEvaluator evaluator(*workspace->database, &clerk);
  for (auto _ : state) {
    auto result = evaluator.Run(*audit);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->rows);
  }
}
BENCHMARK(BM_UnguardedQuery);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  PrintServingReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
