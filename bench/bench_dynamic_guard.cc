// Experiment D1: static vs dynamic enforcement (paper §5).
//
// The static algorithm must reject any grant set whose closure violates
// a requirement — even for users who never combine the dangerous
// functions. The dynamic session guard checks the closure of the
// functions each session has actually exercised, denying exactly the
// flaw-completing query. The report measures the benign-session service
// rate under both regimes and the per-query guard overhead; the timed
// section measures guarded vs unguarded query execution.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "dynamic/session_guard.h"
#include "query/binder.h"
#include "query/query_parser.h"
#include "text/workspace.h"

namespace {

using namespace oodbsec;

constexpr const char* kWorkspace = R"(
class Broker { name: string; salary: int; budget: int; }
function checkBudget(broker: Broker): bool =
  r_budget(broker) >= 10 * r_salary(broker);
user clerk can checkBudget, w_budget, r_name;
require (clerk, r_salary(x) : ti);
object Broker { name = "John", salary = 57, budget = 400 }
)";

std::unique_ptr<query::SelectQuery> Parse(const text::Workspace& workspace,
                                          const std::string& source) {
  auto parsed = query::ParseQueryString(source);
  if (!parsed.ok()) std::abort();
  if (!query::BindQuery(*parsed.value(), *workspace.schema).ok()) {
    std::abort();
  }
  return std::move(parsed).value();
}

void PrintReport() {
  std::printf("=== D1: static grant rejection vs dynamic session guard ===\n\n");

  // Scenario: 20 clerk sessions; the first 16 only audit (checkBudget,
  // r_name), the last 4 attempt the probing attack.
  const int kSessions = 20;
  const int kBenign = 16;

  // Static regime: the grant set's closure violates the requirement, so
  // ALL sessions are refused.
  auto workspace = text::LoadWorkspace(kWorkspace);
  if (!workspace.ok()) std::abort();
  auto report = core::CheckRequirement(*workspace->schema,
                                       *workspace->users,
                                       workspace->requirements[0]);
  if (!report.ok()) std::abort();
  int static_served = report->satisfied ? kSessions : 0;

  // Dynamic regime: each session runs its queries until denied.
  int dynamic_served = 0;
  int attacks_stopped = 0;
  auto audit = Parse(*workspace,
                     "select r_name(b), checkBudget(b) from b in Broker");
  auto probe = Parse(
      *workspace,
      "select w_budget(b, 512), checkBudget(b) from b in Broker");
  const schema::User& clerk = *workspace->users->Find("clerk");
  for (int session = 0; session < kSessions; ++session) {
    // Per-session guard so sessions are independent.
    dynamic::SessionGuard session_guard(*workspace->schema,
                                        *workspace->users,
                                        workspace->requirements);
    bool benign = session < kBenign;
    bool served = true;
    for (int q = 0; q < 3; ++q) {
      const query::SelectQuery& query =
          (benign || q < 2) ? *audit : *probe;
      auto result = session_guard.Run(*workspace->database, clerk, query);
      if (!result.ok()) {
        served = false;
        if (!benign) ++attacks_stopped;
        break;
      }
    }
    if (served && benign) ++dynamic_served;
  }

  std::printf("%-34s %-18s %s\n", "regime", "benign served",
              "attacks stopped");
  std::printf("%-34s %d/%-16d %s\n", "static A(R) on the grant set",
              static_served == 0 ? 0 : kBenign, kBenign,
              "n/a (grant refused)");
  std::printf("%-34s %d/%-16d %d/%d\n", "dynamic session guard",
              dynamic_served, kBenign, attacks_stopped,
              kSessions - kBenign);
  std::printf("\n");
}

void BM_GuardedQuery(benchmark::State& state) {
  auto workspace = text::LoadWorkspace(kWorkspace);
  if (!workspace.ok()) std::abort();
  dynamic::SessionGuard guard(*workspace->schema, *workspace->users,
                              workspace->requirements);
  auto audit = Parse(*workspace,
                     "select r_name(b), checkBudget(b) from b in Broker");
  const schema::User& clerk = *workspace->users->Find("clerk");
  for (auto _ : state) {
    auto result = guard.Run(*workspace->database, clerk, *audit);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->rows);
  }
}
BENCHMARK(BM_GuardedQuery);

void BM_UnguardedQuery(benchmark::State& state) {
  auto workspace = text::LoadWorkspace(kWorkspace);
  if (!workspace.ok()) std::abort();
  auto audit = Parse(*workspace,
                     "select r_name(b), checkBudget(b) from b in Broker");
  const schema::User& clerk = *workspace->users->Find("clerk");
  query::QueryEvaluator evaluator(*workspace->database, &clerk);
  for (auto _ : state) {
    auto result = evaluator.Run(*audit);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->rows);
  }
}
BENCHMARK(BM_UnguardedQuery);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
