// End-to-end integration: workspace round-trips through the serializer,
// the README example works as documented, and cross-module flows hold
// together (load -> analyze -> attack -> guard on one state).
#include <gtest/gtest.h>

#include "attack/attacks.h"
#include "core/analyzer.h"
#include "dynamic/session_guard.h"
#include "query/binder.h"
#include "query/query_evaluator.h"
#include "query/query_parser.h"
#include "text/workspace.h"

namespace oodbsec {
namespace {

using types::Value;

constexpr const char* kFullWorkspace = R"(
class Broker { name: string; salary: int; budget: int; profit: int; }

constraint budgetRegulation(b: Broker): bool =
  r_budget(b) <= 100 * r_salary(b);

function checkBudget(broker: Broker): bool =
  r_budget(broker) >= 10 * r_salary(broker);

function calcSalary(budget: int, profit: int): int =
  budget / 10 + profit / 2;

function updateSalary(broker: Broker): null =
  w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)));

user clerk can checkBudget, w_budget, r_name;
user updater can updateSalary, w_budget, w_profit, r_name;

require (clerk, r_salary(x) : ti);
require (updater, w_salary(a, v : ta));

object Broker { name = "John", salary = 57, budget = 400, profit = 30 }
object Broker { name = "Mary", salary = 83, budget = 900, profit = 10 }
)";

TEST(IntegrationTest, WorkspaceSerializerRoundTrips) {
  auto first = text::LoadWorkspace(kFullWorkspace);
  ASSERT_TRUE(first.ok()) << first.status();
  std::string dumped = text::FormatWorkspace(*first);
  auto second = text::LoadWorkspace(dumped);
  ASSERT_TRUE(second.ok()) << second.status() << "\n--- dump ---\n"
                           << dumped;

  // Structure survives.
  EXPECT_EQ(second->schema->classes().size(),
            first->schema->classes().size());
  EXPECT_EQ(second->schema->functions().size(),
            first->schema->functions().size());
  EXPECT_EQ(second->schema->constraints().size(),
            first->schema->constraints().size());
  EXPECT_EQ(second->requirements.size(), first->requirements.size());
  EXPECT_EQ(second->database->Extent("Broker").size(),
            first->database->Extent("Broker").size());

  // Object contents survive.
  types::Oid john1 = first->database->Extent("Broker")[0];
  types::Oid john2 = second->database->Extent("Broker")[0];
  EXPECT_EQ(first->database->ReadAttribute(john1, "salary").value(),
            second->database->ReadAttribute(john2, "salary").value());

  // Analysis verdicts survive.
  auto reports1 = text::CheckAllRequirements(*first);
  auto reports2 = text::CheckAllRequirements(*second);
  ASSERT_TRUE(reports1.ok());
  ASSERT_TRUE(reports2.ok());
  ASSERT_EQ(reports1->size(), reports2->size());
  for (size_t i = 0; i < reports1->size(); ++i) {
    EXPECT_EQ((*reports1)[i].satisfied, (*reports2)[i].satisfied) << i;
  }

  // The dump itself is idempotent.
  EXPECT_EQ(text::FormatWorkspace(*second), dumped);
}

TEST(IntegrationTest, ReadmeExampleBehavesAsDocumented) {
  schema::SchemaBuilder builder;
  builder.AddClass("Account", {{"balance", "int"}, {"limit", "int"}});
  builder.AddFunction("overLimit", {{"a", "Account"}}, "bool",
                      "r_balance(a) >= r_limit(a)");
  auto schema = std::move(builder).Build();
  ASSERT_TRUE(schema.ok());

  schema::UserRegistry users(*schema.value());
  ASSERT_TRUE(users.AddUser("teller").ok());
  ASSERT_TRUE(users.Grant("teller", "overLimit").ok());
  ASSERT_TRUE(users.Grant("teller", "w_limit").ok());

  auto req = core::ParseRequirementString("(teller, r_balance(x) : ti)");
  ASSERT_TRUE(req.ok());
  auto report = core::CheckRequirement(*schema.value(), users, req.value());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->satisfied);
  EXPECT_FALSE(report->flaws[0].derivation.empty());
}

TEST(IntegrationTest, DetectThenAttackThenGuardOnOneState) {
  auto workspace = text::LoadWorkspace(kFullWorkspace);
  ASSERT_TRUE(workspace.ok()) << workspace.status();

  // 1. Detect statically.
  auto reports = text::CheckAllRequirements(*workspace);
  ASSERT_TRUE(reports.ok());
  EXPECT_FALSE((*reports)[0].satisfied);

  // 2. Realize the flaw against the live database.
  attack::BinarySearchConfig config;
  config.class_name = "Broker";
  config.select_attr = "name";
  config.select_value = Value::String("Mary");
  config.write_fn = "w_budget";
  config.compare_fn = "checkBudget";
  config.factor = 10;
  config.hi = 10000;
  auto transcript = attack::ExtractHiddenValue(
      *workspace->database, *workspace->users->Find("clerk"), config);
  ASSERT_TRUE(transcript.ok()) << transcript.status();
  EXPECT_EQ(transcript->inferred, Value::Int(83));

  // 3. Under the dynamic guard the same probe sequence is stopped at
  // the first query.
  dynamic::SessionGuard guard(*workspace->schema, *workspace->users,
                              workspace->requirements);
  auto probe = query::ParseQueryString(
      "select w_budget(b, 1), checkBudget(b) from b in Broker");
  ASSERT_TRUE(probe.ok());
  ASSERT_TRUE(query::BindQuery(*probe.value(), *workspace->schema).ok());
  auto guarded = guard.Run(*workspace->database,
                           *workspace->users->Find("clerk"),
                           *probe.value());
  EXPECT_FALSE(guarded.ok());
}

TEST(IntegrationTest, PaperQueryFromSection31RunsVerbatim) {
  // "select w_budget(b, 1), checkBudget(b), w_budget(b, 2),
  //  checkBudget(b), ... from b in Broker where r_name(b) = 'John'"
  auto workspace = text::LoadWorkspace(kFullWorkspace);
  ASSERT_TRUE(workspace.ok());
  auto query = query::ParseQueryString(
      "select w_budget(b, 1), checkBudget(b), w_budget(b, 2), "
      "checkBudget(b) from b in Broker where r_name(b) == \"John\"");
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(query::BindQuery(*query.value(), *workspace->schema).ok());
  query::QueryEvaluator evaluator(*workspace->database,
                                  workspace->users->Find("clerk"));
  auto result = evaluator.Run(*query.value());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  // John's salary is 57: budgets 1 and 2 are both below 570.
  EXPECT_EQ(result->rows[0][1], Value::Bool(false));
  EXPECT_EQ(result->rows[0][3], Value::Bool(false));
}

TEST(IntegrationTest, EmptyWorkspaceIsValid) {
  auto workspace = text::LoadWorkspace("");
  ASSERT_TRUE(workspace.ok()) << workspace.status();
  EXPECT_TRUE(workspace->schema->classes().empty());
  EXPECT_TRUE(text::CheckAllRequirements(*workspace)->empty());
  EXPECT_EQ(text::FormatWorkspace(*workspace), "");
}

}  // namespace
}  // namespace oodbsec
