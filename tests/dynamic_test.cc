// Tests for the dynamic session guard (the paper's §5 future-work
// alternative): static-vs-dynamic trade-off, denial at exactly the
// flaw-completing query, session accumulation, and memoization.
#include <gtest/gtest.h>

#include "dynamic/session_guard.h"
#include "query/binder.h"
#include "query/query_parser.h"
#include "text/workspace.h"

namespace oodbsec::dynamic {
namespace {

using types::Value;

constexpr const char* kWorkspace = R"(
class Broker { name: string; salary: int; budget: int; }
function checkBudget(broker: Broker): bool =
  r_budget(broker) >= 10 * r_salary(broker);
user clerk can checkBudget, w_budget, r_name;
require (clerk, r_salary(x) : ti);
object Broker { name = "John", salary = 57, budget = 400 }
)";

struct Fixture {
  text::Workspace workspace;
  std::unique_ptr<SessionGuard> guard;

  Fixture() {
    auto loaded = text::LoadWorkspace(kWorkspace);
    EXPECT_TRUE(loaded.ok()) << loaded.status();
    workspace = std::move(loaded).value();
    guard = std::make_unique<SessionGuard>(
        *workspace.schema, *workspace.users, workspace.requirements);
  }

  std::unique_ptr<query::SelectQuery> Query(const std::string& text) {
    auto parsed = query::ParseQueryString(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_TRUE(query::BindQuery(*parsed.value(), *workspace.schema).ok());
    return std::move(parsed).value();
  }

  const schema::User& Clerk() { return *workspace.users->Find("clerk"); }
};

TEST(SessionGuardTest, StaticAnalysisWouldRejectTheGrantOutright) {
  // Baseline: A(R) over the full capability list flags the requirement,
  // so a purely static deployment cannot serve this clerk at all.
  Fixture f;
  auto report = core::CheckRequirement(*f.workspace.schema,
                                       *f.workspace.users,
                                       f.workspace.requirements[0]);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->satisfied);
}

TEST(SessionGuardTest, BenignQueriesPass) {
  Fixture f;
  // checkBudget alone cannot complete the flaw.
  auto q = f.Query("select checkBudget(b) from b in Broker");
  auto result = f.guard->Run(*f.workspace.database, f.Clerk(), *q);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(f.guard->SessionFunctions("clerk"),
            (std::set<std::string>{"checkBudget"}));
}

TEST(SessionGuardTest, FlawCompletingQueryIsDenied) {
  Fixture f;
  // First query: benign.
  auto q1 = f.Query("select checkBudget(b) from b in Broker");
  ASSERT_TRUE(f.guard->Run(*f.workspace.database, f.Clerk(), *q1).ok());
  // Second query introduces w_budget: together with the session's
  // checkBudget this completes the probing flaw — denied BEFORE any
  // write happens.
  auto q2 = f.Query("select w_budget(b, 100) from b in Broker");
  auto result = f.guard->Run(*f.workspace.database, f.Clerk(), *q2);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kPermissionDenied);
  // The denied query left no trace: budget unchanged, session unchanged.
  types::Oid john = f.workspace.database->Extent("Broker")[0];
  EXPECT_EQ(f.workspace.database->ReadAttribute(john, "budget").value(),
            Value::Int(400));
  EXPECT_EQ(f.guard->SessionFunctions("clerk"),
            (std::set<std::string>{"checkBudget"}));
}

TEST(SessionGuardTest, SingleMixedQueryIsDeniedUpfront) {
  Fixture f;
  // The paper's probing query in one shot: denied on first contact.
  auto q = f.Query(
      "select w_budget(b, 1), checkBudget(b) from b in Broker "
      "where r_name(b) == \"John\"");
  auto decision = f.guard->Decide(f.Clerk(), *q);
  ASSERT_TRUE(decision.ok()) << decision.status();
  EXPECT_FALSE(decision->allowed);
  EXPECT_NE(decision->violated_requirement.find("r_salary"),
            std::string::npos);
  EXPECT_FALSE(decision->derivation.empty());
}

TEST(SessionGuardTest, OrderDoesNotMatter) {
  // Writing first, then testing, is caught at the test query.
  Fixture f;
  auto q1 = f.Query("select w_budget(b, 100) from b in Broker");
  ASSERT_TRUE(f.guard->Run(*f.workspace.database, f.Clerk(), *q1).ok());
  auto q2 = f.Query("select checkBudget(b) from b in Broker");
  auto result = f.guard->Run(*f.workspace.database, f.Clerk(), *q2);
  EXPECT_FALSE(result.ok());
}

TEST(SessionGuardTest, OtherUsersRequirementsDoNotInterfere) {
  Fixture f;
  ASSERT_TRUE(f.workspace.users->AddUser("admin").ok());
  ASSERT_TRUE(f.workspace.users->Grant("admin", "checkBudget").ok());
  ASSERT_TRUE(f.workspace.users->Grant("admin", "w_budget").ok());
  // No requirement names admin: everything passes for them.
  auto q = f.Query(
      "select w_budget(b, 1), checkBudget(b) from b in Broker");
  auto result = f.guard->Run(*f.workspace.database,
                             *f.workspace.users->Find("admin"), *q);
  ASSERT_TRUE(result.ok()) << result.status();
}

TEST(SessionGuardTest, DecisionsAreMemoized) {
  Fixture f;
  auto q = f.Query("select checkBudget(b) from b in Broker");
  ASSERT_TRUE(f.guard->Decide(f.Clerk(), *q).ok());
  int after_first = f.guard->closure_evaluations();
  ASSERT_TRUE(f.guard->Decide(f.Clerk(), *q).ok());
  EXPECT_EQ(f.guard->closure_evaluations(), after_first);
}

TEST(SessionGuardTest, UnboundQueryRejected) {
  Fixture f;
  auto parsed =
      query::ParseQueryString("select checkBudget(b) from b in Broker");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(f.guard->Decide(f.Clerk(), *parsed.value()).ok());
}

TEST(SessionGuardTest, DynamicBeatsStaticOnBenignSessions) {
  // The headline comparison: a benign session (repeated audits) runs to
  // completion under the guard even though the static verdict on the
  // grant set is "reject".
  Fixture f;
  for (int day = 0; day < 5; ++day) {
    auto q = f.Query("select r_name(b), checkBudget(b) from b in Broker");
    auto result = f.guard->Run(*f.workspace.database, f.Clerk(), *q);
    ASSERT_TRUE(result.ok()) << result.status();
  }
  // ...and the moment the session turns adversarial, the door shuts.
  auto probe = f.Query(
      "select w_budget(b, 512), checkBudget(b) from b in Broker");
  EXPECT_FALSE(f.guard->Run(*f.workspace.database, f.Clerk(), *probe).ok());
}

}  // namespace
}  // namespace oodbsec::dynamic
