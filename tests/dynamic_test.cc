// Tests for the dynamic session guard (the paper's §5 future-work
// alternative): static-vs-dynamic trade-off, denial at exactly the
// flaw-completing query, session accumulation, memoization, the
// incremental serving path (trigger pre-filter + session-delta
// rechecks, asserted digest-equal to the cold path over randomized
// churn), concurrency, and the snapshot warm-restart tier.
#include <gtest/gtest.h>
#include <unistd.h>

#include <random>
#include <thread>

#include "core/closure.h"
#include "dynamic/session_guard.h"
#include "query/binder.h"
#include "query/query_parser.h"
#include "snapshot/snapshot_store.h"
#include "test_util.h"
#include "text/workspace.h"
#include "unfold/unfolded.h"

namespace oodbsec::dynamic {
namespace {

using types::Value;

constexpr const char* kWorkspace = R"(
class Broker { name: string; salary: int; budget: int; }
function checkBudget(broker: Broker): bool =
  r_budget(broker) >= 10 * r_salary(broker);
user clerk can checkBudget, w_budget, r_name;
require (clerk, r_salary(x) : ti);
object Broker { name = "John", salary = 57, budget = 400 }
)";

struct Fixture {
  text::Workspace workspace;
  std::unique_ptr<SessionGuard> guard;

  Fixture() {
    auto loaded = text::LoadWorkspace(kWorkspace);
    EXPECT_TRUE(loaded.ok()) << loaded.status();
    workspace = std::move(loaded).value();
    guard = std::make_unique<SessionGuard>(
        *workspace.schema, *workspace.users, workspace.requirements);
  }

  std::unique_ptr<query::SelectQuery> Query(const std::string& text) {
    auto parsed = query::ParseQueryString(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_TRUE(query::BindQuery(*parsed.value(), *workspace.schema).ok());
    return std::move(parsed).value();
  }

  const schema::User& Clerk() { return *workspace.users->Find("clerk"); }
};

TEST(SessionGuardTest, StaticAnalysisWouldRejectTheGrantOutright) {
  // Baseline: A(R) over the full capability list flags the requirement,
  // so a purely static deployment cannot serve this clerk at all.
  Fixture f;
  auto report = core::CheckRequirement(*f.workspace.schema,
                                       *f.workspace.users,
                                       f.workspace.requirements[0]);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->satisfied);
}

TEST(SessionGuardTest, BenignQueriesPass) {
  Fixture f;
  // checkBudget alone cannot complete the flaw.
  auto q = f.Query("select checkBudget(b) from b in Broker");
  auto result = f.guard->Run(*f.workspace.database, f.Clerk(), *q);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(f.guard->SessionFunctions("clerk"),
            (std::set<std::string>{"checkBudget"}));
}

TEST(SessionGuardTest, FlawCompletingQueryIsDenied) {
  Fixture f;
  // First query: benign.
  auto q1 = f.Query("select checkBudget(b) from b in Broker");
  ASSERT_TRUE(f.guard->Run(*f.workspace.database, f.Clerk(), *q1).ok());
  // Second query introduces w_budget: together with the session's
  // checkBudget this completes the probing flaw — denied BEFORE any
  // write happens.
  auto q2 = f.Query("select w_budget(b, 100) from b in Broker");
  auto result = f.guard->Run(*f.workspace.database, f.Clerk(), *q2);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kPermissionDenied);
  // The denied query left no trace: budget unchanged, session unchanged.
  types::Oid john = f.workspace.database->Extent("Broker")[0];
  EXPECT_EQ(f.workspace.database->ReadAttribute(john, "budget").value(),
            Value::Int(400));
  EXPECT_EQ(f.guard->SessionFunctions("clerk"),
            (std::set<std::string>{"checkBudget"}));
}

TEST(SessionGuardTest, SingleMixedQueryIsDeniedUpfront) {
  Fixture f;
  // The paper's probing query in one shot: denied on first contact.
  auto q = f.Query(
      "select w_budget(b, 1), checkBudget(b) from b in Broker "
      "where r_name(b) == \"John\"");
  auto decision = f.guard->Decide(f.Clerk(), *q);
  ASSERT_TRUE(decision.ok()) << decision.status();
  EXPECT_FALSE(decision->allowed);
  EXPECT_NE(decision->violated_requirement.find("r_salary"),
            std::string::npos);
  EXPECT_FALSE(decision->derivation.empty());
}

TEST(SessionGuardTest, OrderDoesNotMatter) {
  // Writing first, then testing, is caught at the test query.
  Fixture f;
  auto q1 = f.Query("select w_budget(b, 100) from b in Broker");
  ASSERT_TRUE(f.guard->Run(*f.workspace.database, f.Clerk(), *q1).ok());
  auto q2 = f.Query("select checkBudget(b) from b in Broker");
  auto result = f.guard->Run(*f.workspace.database, f.Clerk(), *q2);
  EXPECT_FALSE(result.ok());
}

TEST(SessionGuardTest, OtherUsersRequirementsDoNotInterfere) {
  Fixture f;
  ASSERT_TRUE(f.workspace.users->AddUser("admin").ok());
  ASSERT_TRUE(f.workspace.users->Grant("admin", "checkBudget").ok());
  ASSERT_TRUE(f.workspace.users->Grant("admin", "w_budget").ok());
  // No requirement names admin: everything passes for them.
  auto q = f.Query(
      "select w_budget(b, 1), checkBudget(b) from b in Broker");
  auto result = f.guard->Run(*f.workspace.database,
                             *f.workspace.users->Find("admin"), *q);
  ASSERT_TRUE(result.ok()) << result.status();
}

TEST(SessionGuardTest, DecisionsAreMemoized) {
  Fixture f;
  auto q = f.Query("select checkBudget(b) from b in Broker");
  ASSERT_TRUE(f.guard->Decide(f.Clerk(), *q).ok());
  int after_first = f.guard->closure_evaluations();
  ASSERT_TRUE(f.guard->Decide(f.Clerk(), *q).ok());
  EXPECT_EQ(f.guard->closure_evaluations(), after_first);
}

TEST(SessionGuardTest, UnboundQueryRejected) {
  Fixture f;
  auto parsed =
      query::ParseQueryString("select checkBudget(b) from b in Broker");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(f.guard->Decide(f.Clerk(), *parsed.value()).ok());
}

TEST(SessionGuardTest, DynamicBeatsStaticOnBenignSessions) {
  // The headline comparison: a benign session (repeated audits) runs to
  // completion under the guard even though the static verdict on the
  // grant set is "reject".
  Fixture f;
  for (int day = 0; day < 5; ++day) {
    auto q = f.Query("select r_name(b), checkBudget(b) from b in Broker");
    auto result = f.guard->Run(*f.workspace.database, f.Clerk(), *q);
    ASSERT_TRUE(result.ok()) << result.status();
  }
  // ...and the moment the session turns adversarial, the door shuts.
  auto probe = f.Query(
      "select w_budget(b, 512), checkBudget(b) from b in Broker");
  EXPECT_FALSE(f.guard->Run(*f.workspace.database, f.Clerk(), *probe).ok());
}

TEST(SessionGuardTest, MemoKeysDoNotCollideOnSeparatorCharacters) {
  // Regression: the old memo built keys as user + "|" + fn + "," — the
  // two-function set {checkBudget, w_budget} and the single (bogus)
  // name "checkBudget,w_budget" produced the SAME key, so the second
  // lookup returned the first's cached denial instead of a resolution
  // error. Signature-keyed cache entries cannot collide.
  Fixture f;
  auto pair = f.guard->CheckFunctions("clerk", {"checkBudget", "w_budget"});
  ASSERT_TRUE(pair.ok()) << pair.status();
  EXPECT_FALSE(pair->allowed);
  auto bogus = f.guard->CheckFunctions("clerk", {"checkBudget,w_budget"});
  EXPECT_FALSE(bogus.ok());  // unknown name: an error, not a verdict
  // The other direction too: the error left nothing behind that could
  // shadow the real set's verdict.
  auto again = f.guard->CheckFunctions("clerk", {"checkBudget", "w_budget"});
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->allowed);
}

TEST(SessionGuardTest, SessionFunctionsForUnknownUserIsEmpty) {
  Fixture f;
  EXPECT_TRUE(f.guard->SessionFunctions("nobody").empty());
}

// ---------------------------------------------------------------------
// The incremental serving path: a two-class workspace where the Depot
// functions are provably outside the requirement cone of user `ana`
// (different attributes, no shared calls, different root-argument
// type), so queries touching only Depot ride the trigger pre-filter
// fast path; Broker queries take the session-delta recheck path.

constexpr const char* kTwoClassWorkspace = R"(
class Broker { name: string; salary: int; budget0: int; budget1: int; budget2: int; }
class Depot { city: string; stock: int; }
function checkBudget0(b: Broker): bool = r_budget0(b) >= 10 * r_salary(b);
function checkBudget1(b: Broker): bool = r_budget1(b) >= 20 * r_salary(b);
function checkBudget2(b: Broker): bool = r_budget2(b) >= 30 * r_salary(b);
function stockLevel(d: Depot): int = r_stock(d) * 2;
user ana can checkBudget0, checkBudget1, checkBudget2, w_budget0, w_budget1, w_budget2, r_name, stockLevel, w_stock;
user bob can checkBudget0, checkBudget1, checkBudget2, w_budget0, w_budget1, w_budget2, r_name, stockLevel, w_stock;
require (ana, r_salary(x) : ti);
object Broker { name = "John", salary = 57, budget0 = 400, budget1 = 500, budget2 = 600 }
object Depot { city = "Oslo", stock = 7 }
)";

struct TwoClassFixture {
  text::Workspace workspace;
  std::unique_ptr<SessionGuard> guard;

  explicit TwoClassFixture(GuardOptions options = {}) {
    auto loaded = text::LoadWorkspace(kTwoClassWorkspace);
    EXPECT_TRUE(loaded.ok()) << loaded.status();
    workspace = std::move(loaded).value();
    guard = std::make_unique<SessionGuard>(*workspace.schema,
                                           *workspace.users,
                                           workspace.requirements, options);
  }

  std::unique_ptr<query::SelectQuery> Query(const std::string& text) {
    auto parsed = query::ParseQueryString(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_TRUE(query::BindQuery(*parsed.value(), *workspace.schema).ok());
    return std::move(parsed).value();
  }

  const schema::User& User(const std::string& name) {
    return *workspace.users->Find(name);
  }
};

TEST(SessionGuardTest, RelevanceConeSeparatesClasses) {
  TwoClassFixture f;
  // Broker-side functions can feed the r_salary requirement: via the
  // salary/budget attributes or (r_name) the same-type argument axiom.
  EXPECT_TRUE(f.guard->IsRelevant("ana", "checkBudget0"));
  EXPECT_TRUE(f.guard->IsRelevant("ana", "w_budget1"));
  EXPECT_TRUE(f.guard->IsRelevant("ana", "r_salary"));
  EXPECT_TRUE(f.guard->IsRelevant("ana", "r_name"));
  // Depot shares no attribute, call, or argument type with the cone.
  EXPECT_FALSE(f.guard->IsRelevant("ana", "stockLevel"));
  EXPECT_FALSE(f.guard->IsRelevant("ana", "w_stock"));
  // Unknown names stay conservatively relevant.
  EXPECT_TRUE(f.guard->IsRelevant("ana", "no_such_function"));
  // bob has no requirements: nothing is relevant for him.
  EXPECT_FALSE(f.guard->IsRelevant("bob", "checkBudget0"));
}

TEST(SessionGuardTest, IrrelevantQueriesRideTheFastPath) {
  TwoClassFixture f;
  auto depot = f.Query("select stockLevel(d) from d in Depot");
  // First contact validates the (empty) relevant base once...
  ASSERT_TRUE(f.guard->Run(*f.workspace.database, f.User("ana"), *depot).ok());
  int evals_after_first = f.guard->closure_evaluations();
  // ...then Depot-only churn never touches a closure again: the first
  // query with a new inert function rides the trigger pre-filter, and
  // exact repeats of the committed set are session hits.
  for (int i = 0; i < 10; ++i) {
    auto q = f.Query("select stockLevel(d), w_stock(d, 3) from d in Depot");
    ASSERT_TRUE(f.guard->Run(*f.workspace.database, f.User("ana"), *q).ok());
  }
  // Non-committing probes with an uncommitted inert function take the
  // fast path on every single call.
  for (int i = 0; i < 10; ++i) {
    auto probe = f.guard->CheckFunctions("ana", {"w_stock", "r_stock"});
    ASSERT_TRUE(probe.ok());
    EXPECT_TRUE(probe->allowed);
  }
  EXPECT_EQ(f.guard->closure_evaluations(), evals_after_first);
  GuardStats stats = f.guard->Stats();
  EXPECT_GE(stats.fastpath_allows, 10u);
  EXPECT_GE(stats.session_hits, 9u);
  // The session records the depot functions but the live closure never
  // absorbed them.
  SessionGuard::SessionProbe probe = f.guard->Probe("ana");
  EXPECT_TRUE(probe.committed.contains("stockLevel"));
  EXPECT_FALSE(probe.checked.contains("stockLevel"));

  // A user with no requirements never builds anything at all.
  auto mixed = f.Query(
      "select w_budget0(b, 1), checkBudget0(b) from b in Broker");
  ASSERT_TRUE(f.guard->Run(*f.workspace.database, f.User("bob"), *mixed).ok());
  EXPECT_EQ(f.guard->closure_evaluations(), evals_after_first);
}

// One randomized session step: a query text plus the functions it
// invokes (all granted to both users).
struct PoolEntry {
  const char* text;
  std::set<std::string> functions;
};

const std::vector<PoolEntry>& QueryPool() {
  static const std::vector<PoolEntry> pool = {
      {"select checkBudget0(b) from b in Broker", {"checkBudget0"}},
      {"select checkBudget1(b) from b in Broker", {"checkBudget1"}},
      {"select checkBudget2(b) from b in Broker", {"checkBudget2"}},
      {"select w_budget0(b, 100) from b in Broker", {"w_budget0"}},
      {"select w_budget1(b, 100) from b in Broker", {"w_budget1"}},
      {"select w_budget2(b, 100) from b in Broker", {"w_budget2"}},
      {"select r_name(b) from b in Broker", {"r_name"}},
      {"select checkBudget0(b), r_name(b) from b in Broker",
       {"checkBudget0", "r_name"}},
      {"select w_budget0(b, 1), checkBudget0(b) from b in Broker",
       {"w_budget0", "checkBudget0"}},
      {"select w_budget1(b, 2), checkBudget2(b) from b in Broker",
       {"w_budget1", "checkBudget2"}},
      {"select stockLevel(d) from d in Depot", {"stockLevel"}},
      {"select w_stock(d, 9) from d in Depot", {"w_stock"}},
      {"select stockLevel(d), w_stock(d, 3) from d in Depot",
       {"stockLevel", "w_stock"}},
  };
  return pool;
}

TEST(SessionGuardTest, RandomizedChurnMatchesColdVerdictsAndDigests) {
  // 250 random queries across two sessions: every incremental verdict
  // must equal ColdDecision over (committed ∪ query) — including the
  // deny-then-allow orderings the flaw pairs force — and at the end the
  // live incremental closures must be digest-equal to cold rebuilds
  // over the same roots.
  TwoClassFixture f;
  std::map<std::string, std::set<std::string>> committed;
  std::mt19937 rng(20260808);
  const std::vector<PoolEntry>& pool = QueryPool();
  int denials = 0;
  for (int step = 0; step < 250; ++step) {
    const std::string user = (rng() % 3 == 0) ? "bob" : "ana";
    const PoolEntry& entry = pool[rng() % pool.size()];
    std::set<std::string> would_be = committed[user];
    would_be.insert(entry.functions.begin(), entry.functions.end());
    auto cold = SessionGuard::ColdDecision(*f.workspace.schema,
                                           f.workspace.requirements, user,
                                           would_be);
    ASSERT_TRUE(cold.ok()) << cold.status();

    auto query = f.Query(entry.text);
    auto incremental = f.guard->Decide(f.User(user), *query);
    ASSERT_TRUE(incremental.ok()) << incremental.status();
    EXPECT_EQ(incremental->allowed, cold->allowed)
        << "step " << step << " user " << user << ": " << entry.text;
    if (!cold->allowed) {
      EXPECT_EQ(incremental->violated_requirement,
                cold->violated_requirement);
    }

    auto run = f.guard->Run(*f.workspace.database, f.User(user), *query);
    if (cold->allowed) {
      ASSERT_TRUE(run.ok()) << run.status();
      committed[user] = std::move(would_be);
    } else {
      ++denials;
      ASSERT_FALSE(run.ok());
      EXPECT_EQ(run.status().code(), common::StatusCode::kPermissionDenied);
    }
    EXPECT_EQ(f.guard->SessionFunctions(user), committed[user]);
  }
  // The pool's flaw pairs guarantee both verdicts actually occurred.
  EXPECT_GT(denials, 0);

  for (const std::string& user : f.guard->SessionUsers()) {
    SessionGuard::SessionProbe probe = f.guard->Probe(user);
    ASSERT_TRUE(probe.exists);
    // checked is a cone-closed slice of committed that covers at least
    // everything relevant against the requirement seed cone (the
    // session cone may have grown wider and captured more).
    for (const std::string& fn : probe.checked) {
      EXPECT_TRUE(probe.committed.contains(fn)) << user << "/" << fn;
    }
    for (const std::string& fn : probe.committed) {
      if (f.guard->IsRelevant(user, fn)) {
        EXPECT_TRUE(probe.checked.contains(fn)) << user << "/" << fn;
      }
    }
    if (probe.roots.empty()) continue;
    auto cold_set = unfold::UnfoldedSet::Build(*f.workspace.schema,
                                               probe.roots);
    ASSERT_TRUE(cold_set.ok()) << cold_set.status();
    core::Closure cold_closure(*cold_set.value(), core::ClosureOptions{});
    EXPECT_EQ(probe.digest, cold_closure.FactSetDigest()) << user;
  }
  // The serving path actually served: the 250 decisions cost a handful
  // of fixpoints, not one per distinct set.
  GuardStats stats = f.guard->Stats();
  EXPECT_LT(stats.delta_rechecks + stats.cold_builds, 30u);
  EXPECT_GT(stats.fastpath_allows + stats.session_hits + stats.exact_hits,
            200u);
}

TEST(SessionGuardTest, ConcurrentDecisionsAreSafe) {
  // Many threads hammer one guard: shared users (same session, same
  // shard) and per-thread users (distinct shards), read-only Run plus
  // Decide/CheckFunctions on flaw-completing sets. TSan (sanitize_smoke
  // runs this binary) checks the locking; assertions check the
  // verdicts stay deterministic under interleaving.
  TwoClassFixture f;
  constexpr int kThreads = 8;
  constexpr int kIters = 30;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&f, &failures, t] {
      const std::string own_user = "worker" + std::to_string(t);
      for (int i = 0; i < kIters; ++i) {
        // Shared session, read-only execution.
        auto benign = f.Query("select checkBudget0(b) from b in Broker");
        auto run = f.guard->Run(*f.workspace.database, f.User("ana"),
                                *benign);
        if (!run.ok()) failures.fetch_add(1);
        // Shared session, fast path.
        auto depot = f.Query("select stockLevel(d) from d in Depot");
        if (!f.guard->Run(*f.workspace.database, f.User("bob"), *depot)
                 .ok()) {
          failures.fetch_add(1);
        }
        // Flaw-completing probe: must be denied every time, from every
        // thread, without committing anything.
        auto probe = f.guard->CheckFunctions(
            "ana", {"checkBudget0", "w_budget0"});
        if (!probe.ok() || probe->allowed) failures.fetch_add(1);
        // Per-thread sessions exercise distinct shards concurrently.
        auto own = f.guard->CheckFunctions(own_user, {"stockLevel"});
        if (!own.ok() || !own->allowed) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(f.guard->Stats().decisions,
            static_cast<uint64_t>(kThreads * kIters * 4));
  EXPECT_EQ(f.guard->SessionFunctions("ana"),
            (std::set<std::string>{"checkBudget0"}));
}

TEST(SessionGuardTest, SnapshotStoreWarmsRestartedGuard) {
  test_util::ScopedTempDir tmp("oodbsec_guard_test");
  ASSERT_TRUE(tmp.ok());
  const std::string& dir = tmp.path();
  GuardOptions options;
  options.snapshot_store = snapshot::OpenDirectoryStore(dir);

  std::string first_digest;
  {
    TwoClassFixture f(options);
    auto decision = f.guard->CheckFunctions("ana", {"checkBudget0"});
    ASSERT_TRUE(decision.ok());
    EXPECT_TRUE(decision->allowed);
    EXPECT_GE(f.guard->closure_evaluations(), 1);
    ASSERT_TRUE(f.guard->SaveCacheSnapshot().ok());
  }
  {
    // A "restarted" guard over the same store: the persisted session
    // closures replay from disk, so the same decision costs zero
    // fixpoint evaluations.
    TwoClassFixture f(options);
    EXPECT_GT(f.guard->LoadCacheSnapshot(), 0u);
    auto decision = f.guard->CheckFunctions("ana", {"checkBudget0"});
    ASSERT_TRUE(decision.ok());
    EXPECT_TRUE(decision->allowed);
    EXPECT_EQ(f.guard->closure_evaluations(), 0);
    EXPECT_GE(f.guard->Stats().exact_hits, 1u);
  }
}

}  // namespace
}  // namespace oodbsec::dynamic
