#include <gtest/gtest.h>

#include "exec/basic_functions.h"
#include "exec/evaluator.h"
#include "schema/schema.h"
#include "store/database.h"

namespace oodbsec {
namespace {

using types::Oid;
using types::Value;

std::unique_ptr<schema::Schema> BrokerSchema() {
  schema::SchemaBuilder builder;
  builder.AddClass("Broker", {{"name", "string"},
                              {"salary", "int"},
                              {"budget", "int"},
                              {"profit", "int"}});
  builder.AddFunction("checkBudget", {{"broker", "Broker"}}, "bool",
                      "r_budget(broker) >= 10 * r_salary(broker)");
  builder.AddFunction("calcSalary", {{"budget", "int"}, {"profit", "int"}},
                      "int", "budget / 10 + profit / 2");
  builder.AddFunction(
      "updateSalary", {{"broker", "Broker"}}, "null",
      "w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))");
  auto result = std::move(builder).Build();
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

TEST(BasicFunctionsTest, IntArithmetic) {
  types::TypePool pool;
  auto catalog = exec::BasicFunctionCatalog::MakeDefault(pool);
  auto eval2 = [&](const char* name, int64_t a, int64_t b) {
    const exec::BasicFunction* fn =
        catalog->Find(name, {pool.Int(), pool.Int()});
    EXPECT_NE(fn, nullptr) << name;
    return fn->Eval({Value::Int(a), Value::Int(b)});
  };
  EXPECT_EQ(eval2("+", 2, 3), Value::Int(5));
  EXPECT_EQ(eval2("-", 2, 3), Value::Int(-1));
  EXPECT_EQ(eval2("*", 4, 3), Value::Int(12));
  EXPECT_EQ(eval2("/", 7, 2), Value::Int(3));
  EXPECT_EQ(eval2("%", 7, 2), Value::Int(1));
  EXPECT_EQ(eval2("min", 7, 2), Value::Int(2));
  EXPECT_EQ(eval2("max", 7, 2), Value::Int(7));
  // Totalized division (see basic_functions.h).
  EXPECT_EQ(eval2("/", 7, 0), Value::Int(0));
  EXPECT_EQ(eval2("%", 7, 0), Value::Int(0));
}

TEST(BasicFunctionsTest, Comparisons) {
  types::TypePool pool;
  auto catalog = exec::BasicFunctionCatalog::MakeDefault(pool);
  const exec::BasicFunction* ge = catalog->Find(">=", {pool.Int(), pool.Int()});
  ASSERT_NE(ge, nullptr);
  EXPECT_EQ(ge->Eval({Value::Int(3), Value::Int(3)}), Value::Bool(true));
  EXPECT_EQ(ge->Eval({Value::Int(2), Value::Int(3)}), Value::Bool(false));
  EXPECT_EQ(ge->SignatureToString(), ">=(int, int) : bool");
}

TEST(BasicFunctionsTest, OverloadResolution) {
  types::TypePool pool;
  auto catalog = exec::BasicFunctionCatalog::MakeDefault(pool);
  const exec::BasicFunction* int_eq =
      catalog->Find("==", {pool.Int(), pool.Int()});
  const exec::BasicFunction* str_eq =
      catalog->Find("==", {pool.String(), pool.String()});
  const exec::BasicFunction* bool_eq =
      catalog->Find("==", {pool.Bool(), pool.Bool()});
  ASSERT_NE(int_eq, nullptr);
  ASSERT_NE(str_eq, nullptr);
  ASSERT_NE(bool_eq, nullptr);
  EXPECT_NE(int_eq, str_eq);
  EXPECT_EQ(str_eq->Eval({Value::String("a"), Value::String("a")}),
            Value::Bool(true));
  EXPECT_EQ(catalog->Find("==", {pool.Int(), pool.Bool()}), nullptr);
  EXPECT_TRUE(catalog->HasName("concat"));
  EXPECT_FALSE(catalog->HasName("xor"));
}

TEST(BasicFunctionsTest, StringAndBoolOps) {
  types::TypePool pool;
  auto catalog = exec::BasicFunctionCatalog::MakeDefault(pool);
  EXPECT_EQ(catalog->Find("concat", {pool.String(), pool.String()})
                ->Eval({Value::String("ab"), Value::String("cd")}),
            Value::String("abcd"));
  EXPECT_EQ(catalog->Find("and", {pool.Bool(), pool.Bool()})
                ->Eval({Value::Bool(true), Value::Bool(false)}),
            Value::Bool(false));
  EXPECT_EQ(catalog->Find("not", {pool.Bool()})->Eval({Value::Bool(false)}),
            Value::Bool(true));
  EXPECT_EQ(catalog->Find("neg", {pool.Int()})->Eval({Value::Int(4)}),
            Value::Int(-4));
  EXPECT_EQ(catalog->Find("abs", {pool.Int()})->Eval({Value::Int(-4)}),
            Value::Int(4));
}

TEST(DatabaseTest, CreateAndDefaults) {
  auto schema = BrokerSchema();
  store::Database db(*schema);
  auto oid = db.CreateObject("Broker");
  ASSERT_TRUE(oid.ok());
  EXPECT_TRUE(oid.value().valid());
  EXPECT_EQ(db.object_count(), 1u);
  EXPECT_EQ(db.ReadAttribute(*oid, "salary").value(), Value::Int(0));
  EXPECT_EQ(db.ReadAttribute(*oid, "name").value(), Value::String(""));
  EXPECT_FALSE(db.CreateObject("Nothing").ok());
}

TEST(DatabaseTest, ExtentTracksCreationOrder) {
  auto schema = BrokerSchema();
  store::Database db(*schema);
  Oid a = db.CreateObject("Broker").value();
  Oid b = db.CreateObject("Broker").value();
  const auto& extent = db.Extent("Broker");
  ASSERT_EQ(extent.size(), 2u);
  EXPECT_EQ(extent[0], a);
  EXPECT_EQ(extent[1], b);
  EXPECT_TRUE(db.Extent("Unknown").empty());
  EXPECT_EQ(db.ClassOf(a)->name(), "Broker");
  EXPECT_EQ(db.ClassOf(Oid(999)), nullptr);
}

TEST(DatabaseTest, WriteAndReadBack) {
  auto schema = BrokerSchema();
  store::Database db(*schema);
  Oid oid = db.CreateObject("Broker").value();
  ASSERT_TRUE(db.WriteAttribute(oid, "salary", Value::Int(50)).ok());
  EXPECT_EQ(db.ReadAttribute(oid, "salary").value(), Value::Int(50));
  // Type mismatch rejected.
  EXPECT_FALSE(db.WriteAttribute(oid, "salary", Value::Bool(true)).ok());
  // Unknown attribute / object rejected.
  EXPECT_FALSE(db.WriteAttribute(oid, "ghost", Value::Int(1)).ok());
  EXPECT_FALSE(db.WriteAttribute(Oid(999), "salary", Value::Int(1)).ok());
  EXPECT_FALSE(db.ReadAttribute(Oid(999), "salary").ok());
}

TEST(DatabaseTest, CloneIsIndependent) {
  auto schema = BrokerSchema();
  store::Database db(*schema);
  Oid oid = db.CreateObject("Broker").value();
  ASSERT_TRUE(db.WriteAttribute(oid, "salary", Value::Int(10)).ok());
  store::Database snapshot = db.Clone();
  ASSERT_TRUE(db.WriteAttribute(oid, "salary", Value::Int(99)).ok());
  EXPECT_EQ(snapshot.ReadAttribute(oid, "salary").value(), Value::Int(10));
  EXPECT_EQ(db.ReadAttribute(oid, "salary").value(), Value::Int(99));
}

TEST(EvaluatorTest, CheckBudgetEvaluates) {
  auto schema = BrokerSchema();
  store::Database db(*schema);
  Oid oid = db.CreateObject("Broker").value();
  ASSERT_TRUE(db.WriteAttribute(oid, "salary", Value::Int(50)).ok());
  ASSERT_TRUE(db.WriteAttribute(oid, "budget", Value::Int(400)).ok());

  exec::Evaluator evaluator(db);
  const schema::FunctionDecl* check = schema->FindFunction("checkBudget");
  auto result = evaluator.CallFunction(*check, {Value::Object(oid)});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value(), Value::Bool(false));  // 400 < 10*50

  ASSERT_TRUE(db.WriteAttribute(oid, "budget", Value::Int(600)).ok());
  EXPECT_EQ(evaluator.CallFunction(*check, {Value::Object(oid)}).value(),
            Value::Bool(true));  // 600 >= 500
}

TEST(EvaluatorTest, UpdateSalaryWritesThroughCalcSalary) {
  auto schema = BrokerSchema();
  store::Database db(*schema);
  Oid oid = db.CreateObject("Broker").value();
  ASSERT_TRUE(db.WriteAttribute(oid, "budget", Value::Int(200)).ok());
  ASSERT_TRUE(db.WriteAttribute(oid, "profit", Value::Int(30)).ok());

  exec::Evaluator evaluator(db);
  auto result = evaluator.CallByName("updateSalary", {Value::Object(oid)});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value(), Value::Null());
  // calcSalary(200, 30) = 200/10 + 30/2 = 35.
  EXPECT_EQ(db.ReadAttribute(oid, "salary").value(), Value::Int(35));
}

TEST(EvaluatorTest, CallByNameSpecials) {
  auto schema = BrokerSchema();
  store::Database db(*schema);
  Oid oid = db.CreateObject("Broker").value();
  exec::Evaluator evaluator(db);
  ASSERT_TRUE(
      evaluator.CallByName("w_budget", {Value::Object(oid), Value::Int(7)})
          .ok());
  EXPECT_EQ(evaluator.CallByName("r_budget", {Value::Object(oid)}).value(),
            Value::Int(7));
  EXPECT_FALSE(evaluator.CallByName("r_budget", {Value::Int(3)}).ok());
  EXPECT_FALSE(evaluator.CallByName("nope", {}).ok());
}

TEST(EvaluatorTest, ReadOnNullObjectFails) {
  auto schema = BrokerSchema();
  store::Database db(*schema);
  exec::Evaluator evaluator(db);
  const schema::FunctionDecl* check = schema->FindFunction("checkBudget");
  auto result = evaluator.CallFunction(*check, {Value::Null()});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kFailedPrecondition);
}

TEST(EvaluatorTest, WrongArityFails) {
  auto schema = BrokerSchema();
  store::Database db(*schema);
  exec::Evaluator evaluator(db);
  const schema::FunctionDecl* check = schema->FindFunction("checkBudget");
  EXPECT_FALSE(evaluator.CallFunction(*check, {}).ok());
}

TEST(EvaluatorTest, TraceHookSeesEvaluationOrder) {
  auto schema = BrokerSchema();
  store::Database db(*schema);
  Oid oid = db.CreateObject("Broker").value();
  ASSERT_TRUE(db.WriteAttribute(oid, "salary", Value::Int(5)).ok());
  ASSERT_TRUE(db.WriteAttribute(oid, "budget", Value::Int(60)).ok());

  exec::Evaluator evaluator(db);
  std::vector<Value> observed;
  evaluator.set_trace_hook(
      [&](const lang::Expr&, const Value& v) { observed.push_back(v); });
  const schema::FunctionDecl* check = schema->FindFunction("checkBudget");
  ASSERT_TRUE(evaluator.CallFunction(*check, {Value::Object(oid)}).ok());

  // Evaluation order (paper numbering): broker, r_budget, 10, broker,
  // r_salary, *, >=.
  ASSERT_EQ(observed.size(), 7u);
  EXPECT_EQ(observed[0], Value::Object(oid));
  EXPECT_EQ(observed[1], Value::Int(60));
  EXPECT_EQ(observed[2], Value::Int(10));
  EXPECT_EQ(observed[3], Value::Object(oid));
  EXPECT_EQ(observed[4], Value::Int(5));
  EXPECT_EQ(observed[5], Value::Int(50));
  EXPECT_EQ(observed[6], Value::Bool(true));
}

TEST(EnvironmentTest, InnermostBindingWins) {
  exec::Environment env;
  env.Push("x", Value::Int(1));
  env.Push("x", Value::Int(2));
  ASSERT_NE(env.Find("x"), nullptr);
  EXPECT_EQ(*env.Find("x"), Value::Int(2));
  env.Pop();
  EXPECT_EQ(*env.Find("x"), Value::Int(1));
  EXPECT_EQ(env.Find("y"), nullptr);
}

}  // namespace
}  // namespace oodbsec
