#include <gtest/gtest.h>

#include "unfold/unfolded.h"

namespace oodbsec::unfold {
namespace {

std::unique_ptr<schema::Schema> BrokerSchema() {
  schema::SchemaBuilder builder;
  builder.AddClass("Broker", {{"name", "string"},
                              {"salary", "int"},
                              {"budget", "int"},
                              {"profit", "int"}});
  builder.AddFunction("checkBudget", {{"broker", "Broker"}}, "bool",
                      ">=(r_budget(broker), *(10, r_salary(broker)))");
  builder.AddFunction("calcSalary", {{"budget", "int"}, {"profit", "int"}},
                      "int", "budget / 10 + profit / 2");
  builder.AddFunction(
      "updateSalary", {{"broker", "Broker"}}, "null",
      "w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))");
  auto result = std::move(builder).Build();
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

// The paper's §4.2 numbering for F = {checkBudget(broker), w_budget(o,v)}:
//   checkBudget: 7>=(2r_budget(1broker), 6*(3:10, 5r_salary(4broker)))
//   w_budget:    10:w_budget(8:o, 9:v)
TEST(UnfoldTest, PaperNumberingForCheckBudgetAndWriteBudget) {
  auto schema = BrokerSchema();
  auto result = UnfoldedSet::Build(*schema, {"checkBudget", "w_budget"});
  ASSERT_TRUE(result.ok()) << result.status();
  const UnfoldedSet& set = *result.value();

  ASSERT_EQ(set.roots().size(), 2u);
  EXPECT_EQ(set.node_count(), 10);

  EXPECT_EQ(set.node(1)->kind, NodeKind::kVarRef);
  EXPECT_EQ(set.node(1)->var_name, "broker");
  EXPECT_EQ(set.node(2)->kind, NodeKind::kReadAttr);
  EXPECT_EQ(set.node(2)->attribute, "budget");
  EXPECT_EQ(set.node(3)->kind, NodeKind::kConstant);
  EXPECT_EQ(set.node(3)->constant, types::Value::Int(10));
  EXPECT_EQ(set.node(4)->var_name, "broker");
  EXPECT_EQ(set.node(5)->attribute, "salary");
  EXPECT_EQ(set.node(6)->kind, NodeKind::kBasicCall);
  EXPECT_EQ(set.node(6)->basic->name(), "*");
  EXPECT_EQ(set.node(7)->basic->name(), ">=");

  EXPECT_EQ(set.node(8)->var_name, "o");
  EXPECT_EQ(set.node(9)->var_name, "v");
  EXPECT_EQ(set.node(10)->kind, NodeKind::kWriteAttr);
  EXPECT_EQ(set.node(10)->attribute, "budget");

  // Both occurrences of `broker` share one binder.
  EXPECT_EQ(set.node(1)->binder_id, set.node(4)->binder_id);
  const Binder& broker = set.binder(set.node(1)->binder_id);
  EXPECT_TRUE(broker.is_root_arg);
  EXPECT_EQ(broker.occurrences.size(), 2u);

  // Role predicates.
  EXPECT_TRUE(set.IsRootArgVar(set.node(1)));
  EXPECT_TRUE(set.IsRootArgVar(set.node(8)));
  EXPECT_FALSE(set.IsRootArgVar(set.node(2)));
  EXPECT_TRUE(set.IsRootBody(set.node(7)));
  EXPECT_TRUE(set.IsRootBody(set.node(10)));
  EXPECT_FALSE(set.IsRootBody(set.node(6)));

  // Cross-reference tables.
  EXPECT_EQ(set.reads("budget").size(), 1u);
  EXPECT_EQ(set.writes("budget").size(), 1u);
  EXPECT_EQ(set.reads("salary").size(), 1u);
  EXPECT_TRUE(set.writes("salary").empty());

  EXPECT_EQ(set.NodeLabel(7),
            "7:>=(2:r_budget(1:broker), 6:*(3:10, 5:r_salary(4:broker)))");
  EXPECT_EQ(set.ShortLabel(5), "5:r_salary(broker)");
}

// The paper's §3.3 example: f(x) = +(g(x), 1), g(y) = r_age(y) unfolds to
//   6+(4let(g) y = 1x in 3r_age(2y) end, 5:1).
TEST(UnfoldTest, LetUnfoldingMatchesPaperExample) {
  schema::SchemaBuilder builder;
  builder.AddClass("Person", {{"age", "int"}});
  builder.AddFunction("g", {{"y", "Person"}}, "int", "r_age(y)");
  builder.AddFunction("f", {{"x", "Person"}}, "int", "+(g(x), 1)");
  auto schema_result = std::move(builder).Build();
  ASSERT_TRUE(schema_result.ok());
  auto& schema = *schema_result.value();

  auto result = UnfoldedSet::Build(schema, {"f"});
  ASSERT_TRUE(result.ok()) << result.status();
  const UnfoldedSet& set = *result.value();

  EXPECT_EQ(set.node_count(), 6);
  EXPECT_EQ(set.node(1)->var_name, "x");
  EXPECT_EQ(set.node(2)->var_name, "y");
  EXPECT_EQ(set.node(3)->kind, NodeKind::kReadAttr);
  EXPECT_EQ(set.node(4)->kind, NodeKind::kLet);
  EXPECT_EQ(set.node(4)->origin_function, "g");
  EXPECT_EQ(set.node(5)->constant, types::Value::Int(1));
  EXPECT_EQ(set.node(6)->basic->name(), "+");

  // The let binder for y is bound to occurrence 1 (the unfolded x).
  const Binder& y = set.binder(set.node(2)->binder_id);
  EXPECT_FALSE(y.is_root_arg);
  ASSERT_NE(y.bound_expr, nullptr);
  EXPECT_EQ(y.bound_expr->id, 1);
  EXPECT_EQ(y.let_node, set.node(4));

  // Body/child accessors.
  EXPECT_EQ(set.node(4)->body()->id, 3);
  EXPECT_EQ(set.node(3)->object_child()->id, 2);
}

TEST(UnfoldTest, SequencesAllowDuplicates) {
  auto schema = BrokerSchema();
  auto result = UnfoldedSet::Build(*schema, {"checkBudget", "checkBudget"});
  ASSERT_TRUE(result.ok());
  const UnfoldedSet& set = *result.value();
  EXPECT_EQ(set.roots().size(), 2u);
  EXPECT_EQ(set.node_count(), 14);
  // Each copy has its own binder.
  EXPECT_NE(set.node(1)->binder_id, set.node(8)->binder_id);
  EXPECT_EQ(set.reads("budget").size(), 2u);
}

TEST(UnfoldTest, NestedUnfoldingNumbersAcrossLevels) {
  auto schema = BrokerSchema();
  auto result = UnfoldedSet::Build(*schema, {"updateSalary"});
  ASSERT_TRUE(result.ok()) << result.status();
  const UnfoldedSet& set = *result.value();

  // updateSalary(broker) = w_salary(broker, let(calcSalary) budget =
  // r_budget(broker), profit = r_profit(broker) in budget/10 + profit/2
  // end). Evaluation order: 1:broker, 2:broker, 3:r_budget, 4:broker,
  // 5:r_profit, 6:budget, 7:10, 8:/, 9:profit, 10:2, 11:/, 12:+, 13:let,
  // 14:w_salary.
  EXPECT_EQ(set.node_count(), 14);
  EXPECT_EQ(set.node(3)->attribute, "budget");
  EXPECT_EQ(set.node(5)->attribute, "profit");
  EXPECT_EQ(set.node(13)->kind, NodeKind::kLet);
  EXPECT_EQ(set.node(13)->origin_function, "calcSalary");
  EXPECT_EQ(set.node(14)->kind, NodeKind::kWriteAttr);
  EXPECT_EQ(set.node(14)->value_child()->id, 13);
  EXPECT_EQ(set.node(14)->object_child()->id, 1);

  // The let binders bind to the read results.
  const Node* let = set.node(13);
  ASSERT_EQ(let->binder_ids.size(), 2u);
  EXPECT_EQ(set.binder(let->binder_ids[0]).bound_expr->id, 3);
  EXPECT_EQ(set.binder(let->binder_ids[1]).bound_expr->id, 5);
}

TEST(UnfoldTest, SourceLevelLet) {
  schema::SchemaBuilder builder;
  builder.AddClass("P", {{"age", "int"}});
  builder.AddFunction("f", {{"o", "P"}}, "int",
                      "let a = r_age(o), b = a * 2 in a + b end");
  auto schema_result = std::move(builder).Build();
  ASSERT_TRUE(schema_result.ok());

  auto result = UnfoldedSet::Build(*schema_result.value(), {"f"});
  ASSERT_TRUE(result.ok()) << result.status();
  const UnfoldedSet& set = *result.value();
  // 1:o, 2:r_age, 3:a, 4:2, 5:*, 6:a, 7:b, 8:+, 9:let
  EXPECT_EQ(set.node_count(), 9);
  EXPECT_EQ(set.node(9)->kind, NodeKind::kLet);
  EXPECT_TRUE(set.node(9)->origin_function.empty());
  // Occurrences 3 and 6 are the same binder (a).
  EXPECT_EQ(set.node(3)->binder_id, set.node(6)->binder_id);
  EXPECT_EQ(set.binder(set.node(3)->binder_id).occurrences.size(), 2u);
}

TEST(UnfoldTest, UnknownRootFails) {
  auto schema = BrokerSchema();
  EXPECT_FALSE(UnfoldedSet::Build(*schema, {"nothing"}).ok());
  EXPECT_FALSE(UnfoldedSet::Build(*schema, {"r_ghost"}).ok());
}

TEST(UnfoldTest, TouchedAttributes) {
  auto schema = BrokerSchema();
  auto result = UnfoldedSet::Build(*schema, {"updateSalary"});
  ASSERT_TRUE(result.ok());
  auto touched = result.value()->touched_attributes();
  EXPECT_EQ(touched, (std::vector<std::string>{"budget", "profit", "salary"}));
}

}  // namespace
}  // namespace oodbsec::unfold
