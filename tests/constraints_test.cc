// Integrity-constraint-aware analysis (paper §1.1): "integrity
// constraints are referred to ... because the knowledge of a constraint
// always holds in a database, a user can compute more sensitive values
// with [it]". A constraint is a boolean access function the database
// guarantees; the analyzer folds it into every user's closure as a
// known-true observation.
#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/requirement.h"
#include "schema/user.h"
#include "text/workspace.h"

namespace oodbsec::core {
namespace {

// The paper's §1 regulation: "the budget of each broker should not be
// higher than ten times his salary".
std::unique_ptr<schema::Schema> RegulatedSchema() {
  schema::SchemaBuilder builder;
  builder.AddClass("Broker", {{"salary", "int"}, {"budget", "int"}});
  builder.AddConstraint("budgetRegulation", {{"b", "Broker"}},
                        "r_budget(b) <= 10 * r_salary(b)");
  auto result = std::move(builder).Build();
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

TEST(ConstraintsTest, SchemaRecordsConstraints) {
  auto schema = RegulatedSchema();
  ASSERT_EQ(schema->constraints().size(), 1u);
  EXPECT_EQ(schema->constraints()[0]->name(), "budgetRegulation");
  // Constraints are ordinary functions too.
  EXPECT_NE(schema->FindFunction("budgetRegulation"), nullptr);
}

TEST(ConstraintsTest, ConstraintMustExistAndReturnBool) {
  {
    schema::SchemaBuilder builder;
    builder.AddClass("C", {{"a", "int"}});
    builder.MarkConstraint("ghost");
    EXPECT_FALSE(std::move(builder).Build().ok());
  }
  {
    schema::SchemaBuilder builder;
    builder.AddClass("C", {{"a", "int"}});
    builder.AddFunction("f", {{"o", "C"}}, "int", "r_a(o)");
    builder.MarkConstraint("f");
    auto result = std::move(builder).Build();
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), common::StatusCode::kTypeError);
  }
}

TEST(ConstraintsTest, ConstraintKnowledgeLeaksThroughGrantedReads) {
  // The paper's opening scenario: a user who may read budgets learns
  // something about salaries purely from the regulation — no function
  // involving salary is granted at all.
  auto schema = RegulatedSchema();
  schema::UserRegistry users(*schema);
  ASSERT_TRUE(users.AddUser("clerk").ok());
  ASSERT_TRUE(users.Grant("clerk", "r_budget").ok());

  auto req = ParseRequirementString("(clerk, r_salary(x) : pi)");
  ASSERT_TRUE(req.ok());
  auto report = CheckRequirement(*schema, users, req.value());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->satisfied)
      << "knowing the budget plus the regulation bounds the salary";
}

TEST(ConstraintsTest, WithoutTheConstraintTheSameGrantIsSafe) {
  // Identical schema minus the constraint marking: the budget read
  // alone teaches nothing about the salary.
  schema::SchemaBuilder builder;
  builder.AddClass("Broker", {{"salary", "int"}, {"budget", "int"}});
  builder.AddFunction("budgetRegulation", {{"b", "Broker"}}, "bool",
                      "r_budget(b) <= 10 * r_salary(b)");
  auto schema = std::move(builder).Build();
  ASSERT_TRUE(schema.ok());
  schema::UserRegistry users(*schema.value());
  ASSERT_TRUE(users.AddUser("clerk").ok());
  ASSERT_TRUE(users.Grant("clerk", "r_budget").ok());

  auto req = ParseRequirementString("(clerk, r_salary(x) : pi)");
  ASSERT_TRUE(req.ok());
  auto report = CheckRequirement(*schema.value(), users, req.value());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->satisfied);
}

TEST(ConstraintsTest, ConstraintPlusWriteLeaksTotally) {
  // Writing the budget turns the regulation into a probe: the analyzer
  // must flag total inferability (the user sweeps the budget and knows
  // the regulation keeps holding... pessimistically, exactly the
  // checkBudget story with the constraint playing the comparator).
  auto schema = RegulatedSchema();
  schema::UserRegistry users(*schema);
  ASSERT_TRUE(users.AddUser("writer").ok());
  ASSERT_TRUE(users.Grant("writer", "w_budget").ok());

  auto req = ParseRequirementString("(writer, r_salary(x) : ti)");
  ASSERT_TRUE(req.ok());
  auto report = CheckRequirement(*schema, users, req.value());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->satisfied);
}

TEST(ConstraintsTest, UserWithNoGrantsStillSatisfiesTotalSecrecy) {
  auto schema = RegulatedSchema();
  schema::UserRegistry users(*schema);
  ASSERT_TRUE(users.AddUser("nobody").ok());
  auto req = ParseRequirementString("(nobody, r_salary(x) : ti)");
  ASSERT_TRUE(req.ok());
  auto report = CheckRequirement(*schema, users, req.value());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->satisfied);
}

TEST(ConstraintsTest, WorkspaceConstraintSyntax) {
  auto workspace = text::LoadWorkspace(R"(
class Broker { salary: int; budget: int; }
constraint budgetRegulation(b: Broker): bool =
  r_budget(b) <= 10 * r_salary(b);
user clerk can r_budget;
require (clerk, r_salary(x) : pi);
)");
  ASSERT_TRUE(workspace.ok()) << workspace.status();
  ASSERT_EQ(workspace->schema->constraints().size(), 1u);
  auto reports = text::CheckAllRequirements(*workspace);
  ASSERT_TRUE(reports.ok()) << reports.status();
  EXPECT_FALSE((*reports)[0].satisfied);
}

TEST(ConstraintsTest, WorkspaceRejectsNonBoolConstraint) {
  auto workspace = text::LoadWorkspace(R"(
class C { a: int; }
constraint broken(o: C): int = r_a(o);
)");
  EXPECT_FALSE(workspace.ok());
}

}  // namespace
}  // namespace oodbsec::core
