// Snapshot-tier and shard-coordinator tests.
//
// The roundtrip suite pins the persistence contract: a closure saved to
// disk and loaded in a fresh cache (or a fresh *process* — this binary
// re-execs itself as a worker) replays to a byte-identical derivation
// log and serves audits with zero fixpoints. The robustness suite feeds
// the loader truncated, corrupted, version-skewed, and fingerprint-
// skewed files and requires a counted fallback to a cold build — never
// a crash, never a wrong answer. The shard suite pins the coordinator's
// determinism contract against single-process CheckBatch.
//
// This binary has its own main: `snapshot_test --snapshot-worker <dir>`
// runs the stockbroker audit against a snapshot directory and prints
// the reports, which is how the cross-process roundtrip fixture spawns
// a genuinely fresh process image.
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/analyzer.h"
#include "core/closure.h"
#include "core/closure_cache.h"
#include "core/requirement.h"
#include "schema/schema.h"
#include "schema/user.h"
#include "service/analysis_service.h"
#include "service/capability_signature.h"
#include "service/shard.h"
#include "snapshot/binio.h"
#include "snapshot/snapshot.h"
#include "test_util.h"
#include "unfold/unfolded.h"

namespace {

const char* g_argv0 = nullptr;

}  // namespace

namespace oodbsec {
namespace {

using core::CachedAnalysis;
using core::ClosureCache;
using core::ClosureOptions;

std::unique_ptr<schema::Schema> BrokerSchema() {
  schema::SchemaBuilder builder;
  builder.AddClass("Broker", {{"name", "string"},
                              {"salary", "int"},
                              {"budget", "int"},
                              {"profit", "int"}});
  builder.AddFunction("checkBudget", {{"broker", "Broker"}}, "bool",
                      ">=(r_budget(broker), *(10, r_salary(broker)))");
  builder.AddFunction("calcSalary", {{"budget", "int"}, {"profit", "int"}},
                      "int", "budget / 10 + profit / 2");
  builder.AddFunction(
      "updateSalary", {{"broker", "Broker"}}, "null",
      "w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))");
  auto result = std::move(builder).Build();
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

// The same schema with one extra attribute — semantically different,
// so snapshots saved under BrokerSchema must be rejected by it.
std::unique_ptr<schema::Schema> DriftedBrokerSchema() {
  schema::SchemaBuilder builder;
  builder.AddClass("Broker", {{"name", "string"},
                              {"salary", "int"},
                              {"budget", "int"},
                              {"profit", "int"},
                              {"bonus", "int"}});
  builder.AddFunction("checkBudget", {{"broker", "Broker"}}, "bool",
                      ">=(r_budget(broker), *(10, r_salary(broker)))");
  builder.AddFunction("calcSalary", {{"budget", "int"}, {"profit", "int"}},
                      "int", "budget / 10 + profit / 2");
  builder.AddFunction(
      "updateSalary", {{"broker", "Broker"}}, "null",
      "w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))");
  auto result = std::move(builder).Build();
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

// The three-role stockbroker population the fleet-audit example runs;
// shared by the shard tests and the re-exec'ed worker.
struct Fleet {
  std::unique_ptr<schema::Schema> schema;
  std::unique_ptr<schema::UserRegistry> users;
  std::vector<core::Requirement> sheet;
};

Fleet MakeFleet(int accounts_per_role = 3) {
  Fleet fleet;
  fleet.schema = BrokerSchema();
  fleet.users = std::make_unique<schema::UserRegistry>(*fleet.schema);
  struct Role {
    const char* name;
    std::vector<const char*> grants;
    const char* requirement;
  };
  const std::vector<Role> roles = {
      {"clerk", {"checkBudget", "w_budget"}, "(%s, r_salary(x) : ti)"},
      {"updater",
       {"updateSalary", "w_budget", "w_profit"},
       "(%s, w_salary(a, v : ta))"},
      {"auditor", {"checkBudget"}, "(%s, r_salary(x) : pi)"},
  };
  for (const Role& role : roles) {
    for (int k = 0; k < accounts_per_role; ++k) {
      std::string account = common::StrCat(role.name, k);
      EXPECT_TRUE(fleet.users->AddUser(account).ok());
      for (const char* grant : role.grants) {
        EXPECT_TRUE(fleet.users->Grant(account, grant).ok());
      }
      char text[128];
      std::snprintf(text, sizeof text, role.requirement, account.c_str());
      auto parsed = core::ParseRequirementString(text);
      EXPECT_TRUE(parsed.ok()) << parsed.status();
      fleet.sheet.push_back(std::move(parsed).value());
    }
  }
  return fleet;
}

service::ServiceOptions MakeServiceOptions(int threads,
                                           std::string snapshot_dir = {}) {
  service::ServiceOptions options;
  options.threads = threads;
  options.snapshot_dir = std::move(snapshot_dir);
  return options;
}

using test_util::ScopedTempDir;

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

std::string SnapshotPath(const std::string& dir, const ClosureOptions& options,
                         const std::vector<std::string>& roots) {
  return common::StrCat(dir, "/",
                        snapshot::SnapshotFileName(options, roots));
}

// Asserts the two closures have byte-identical derivation logs — same
// steps, same rule labels, same premise lists — the strong form of the
// snapshot contract (FactSetDigest equality is the weak form).
void ExpectIdenticalLogs(const core::Closure& a, const core::Closure& b) {
  ASSERT_EQ(a.steps().size(), b.steps().size());
  for (size_t i = 0; i < a.steps().size(); ++i) {
    const core::DerivationStep& sa = a.steps()[i];
    const core::DerivationStep& sb = b.steps()[i];
    EXPECT_EQ(sa.fact.kind, sb.fact.kind) << "step " << i;
    EXPECT_EQ(sa.fact.a, sb.fact.a) << "step " << i;
    EXPECT_EQ(sa.fact.b, sb.fact.b) << "step " << i;
    EXPECT_EQ(sa.fact.origin.num, sb.fact.origin.num) << "step " << i;
    EXPECT_EQ(sa.fact.origin.dir, sb.fact.origin.dir) << "step " << i;
    EXPECT_EQ(sa.rule, sb.rule) << "step " << i;
    core::FactId id = static_cast<core::FactId>(i);
    auto pa = a.premises(id);
    auto pb = b.premises(id);
    ASSERT_EQ(pa.size(), pb.size()) << "step " << i;
    for (size_t p = 0; p < pa.size(); ++p) {
      EXPECT_EQ(pa[p], pb[p]) << "step " << i << " premise " << p;
    }
  }
}

const std::vector<std::string> kFullRoots = {"checkBudget", "updateSalary"};

TEST(SnapshotRoundtrip, ByteIdenticalReplay) {
  ScopedTempDir tmp("oodbsec_snapshot_test");
  ASSERT_TRUE(tmp.ok());
  const std::string& dir = tmp.path();
  auto schema = BrokerSchema();
  ClosureOptions options;

  ClosureCache saver(*schema, options, 64, nullptr, dir);
  auto built = saver.GetOrBuild(kFullRoots);
  ASSERT_TRUE(built.ok()) << built.status();
  ASSERT_TRUE(saver.SaveCacheSnapshot(*built.value()).ok());

  // A fresh cache simulating a restarted process: the probe must serve
  // the saved entry, replayed — not rebuilt.
  ClosureCache loader(*schema, options, 64, nullptr, dir);
  auto loaded = loader.FindSnapshot(kFullRoots);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loader.stats().snapshot_hits, 1u);
  EXPECT_EQ(loader.stats().cold_builds, 0u);
  EXPECT_TRUE(loaded->closure->warm_started());
  EXPECT_EQ(loaded->roots, kFullRoots);
  EXPECT_EQ(loaded->closure->FactSetDigest(),
            built.value()->closure->FactSetDigest());
  ExpectIdenticalLogs(*built.value()->closure, *loaded->closure);
}

TEST(SnapshotRoundtrip, GetOrBuildChainsExactThenSnapshotThenBuild) {
  ScopedTempDir tmp("oodbsec_snapshot_test");
  ASSERT_TRUE(tmp.ok());
  const std::string& dir = tmp.path();
  auto schema = BrokerSchema();
  ClosureOptions options;

  {
    ClosureCache saver(*schema, options, 64, nullptr, dir);
    auto built = saver.GetOrBuild(kFullRoots);
    ASSERT_TRUE(built.ok()) << built.status();
    ASSERT_TRUE(saver.SaveCacheSnapshot().ok());  // bulk form
  }

  ClosureCache cache(*schema, options, 64, nullptr, dir);
  auto first = cache.GetOrBuild(kFullRoots);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cache.stats().snapshot_hits, 1u);
  EXPECT_EQ(cache.stats().cold_builds, 0u);
  EXPECT_EQ(cache.stats().warm_builds, 0u);
  // Second resolution: the L2 hit landed in L1, so no disk touch.
  auto second = cache.GetOrBuild(kFullRoots);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.stats().exact_hits, 1u);
  EXPECT_EQ(cache.stats().snapshot_hits, 1u);
  // A list with no snapshot still probes (miss), then builds cold.
  auto other = cache.GetOrBuild({"checkBudget"});
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(cache.stats().snapshot_misses, 1u);
}

TEST(SnapshotRoundtrip, LoadedSnapshotServesAsWarmBase) {
  ScopedTempDir tmp("oodbsec_snapshot_test");
  ASSERT_TRUE(tmp.ok());
  const std::string& dir = tmp.path();
  auto schema = BrokerSchema();
  ClosureOptions options;

  {
    ClosureCache saver(*schema, options, 64, nullptr, dir);
    auto built = saver.GetOrBuild({"checkBudget"});
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE(saver.SaveCacheSnapshot().ok());
  }

  // Bulk warm start, then a superset request: the loaded entry must
  // serve as the warm-start base exactly like an in-memory one.
  ClosureCache cache(*schema, options, 64, nullptr, dir);
  EXPECT_EQ(cache.LoadCacheSnapshot(), 1u);
  auto superset = cache.GetOrBuild(kFullRoots);
  ASSERT_TRUE(superset.ok());
  EXPECT_TRUE(superset.value()->closure->warm_started());
  EXPECT_EQ(cache.stats().warm_builds, 1u);

  // Same fact set as a cold run (the warm-start equivalence).
  ClosureCache cold_cache(*schema, options, 64, nullptr);
  auto cold = cold_cache.GetOrBuild(kFullRoots);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(superset.value()->closure->FactSetDigest(),
            cold.value()->closure->FactSetDigest());
}

TEST(SnapshotRoundtrip, RetractedClosureSnapshotRoundtrips) {
  // A retraction-built closure's log is complete and premise-ordered —
  // structurally indistinguishable from a cold log — so the snapshot
  // tier must persist and replay it like any other entry.
  ScopedTempDir tmp("oodbsec_snapshot_test");
  ASSERT_TRUE(tmp.ok());
  const std::string& dir = tmp.path();
  auto schema = BrokerSchema();
  ClosureOptions options;
  const std::vector<std::string> reduced = {"checkBudget"};

  ClosureCache saver(*schema, options, 64, nullptr, dir);
  auto full = saver.GetOrBuild(kFullRoots);
  ASSERT_TRUE(full.ok()) << full.status();
  auto retracted = saver.RetractEntry(kFullRoots, reduced);
  ASSERT_NE(retracted, nullptr);
  ASSERT_TRUE(retracted->closure->retracted());
  EXPECT_EQ(saver.stats().retract_builds, 1u);
  ASSERT_TRUE(saver.SaveCacheSnapshot(*retracted).ok());

  ClosureCache loader(*schema, options, 64, nullptr, dir);
  auto loaded = loader.FindSnapshot(reduced);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loader.stats().snapshot_hits, 1u);
  ExpectIdenticalLogs(*retracted->closure, *loaded->closure);

  // The replayed retraction serves the same fact set a cold build of
  // the reduced list derives.
  auto cold_set = unfold::UnfoldedSet::Build(*schema, reduced);
  ASSERT_TRUE(cold_set.ok());
  core::Closure cold(*cold_set.value());
  EXPECT_EQ(loaded->closure->FactSetDigest(), cold.FactSetDigest());
}

TEST(SnapshotRoundtrip, OptionsChangeTheFileName) {
  ClosureOptions a;
  ClosureOptions b;
  b.pi_join_to_ti = false;
  EXPECT_NE(snapshot::SnapshotFileName(a, kFullRoots),
            snapshot::SnapshotFileName(b, kFullRoots));
  EXPECT_NE(snapshot::SnapshotFileName(a, kFullRoots),
            snapshot::SnapshotFileName(a, {"checkBudget"}));
  EXPECT_EQ(snapshot::SnapshotFileName(a, kFullRoots),
            snapshot::SnapshotFileName(a, kFullRoots));
}

// --- the cross-process fixture (ctest: snapshot_roundtrip) -----------

TEST(SnapshotRoundtrip, FreshProcessReplaysTheAudit) {
  ASSERT_NE(g_argv0, nullptr);
  ScopedTempDir tmp("oodbsec_snapshot_test");
  ASSERT_TRUE(tmp.ok());
  const std::string& dir = tmp.path();
  Fleet fleet = MakeFleet();

  // In-process pass: run the audit cold, persist every closure, and
  // render the expected report text.
  std::string expected;
  {
    service::AnalysisService svc(*fleet.schema, *fleet.users,
                                 MakeServiceOptions(2, dir));
    auto reports = svc.CheckBatch(fleet.sheet);
    ASSERT_TRUE(reports.ok()) << reports.status();
    ASSERT_TRUE(svc.SaveCacheSnapshot().ok());
    for (const core::AnalysisReport& report : reports.value()) {
      expected += report.ToString();
    }
  }

  // Spawn a genuinely fresh process (fork + exec of this binary in
  // worker mode) over the same directory and diff its reports.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    ::execl(g_argv0, g_argv0, "--snapshot-worker", dir.c_str(),
            static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed
  }
  ::close(fds[1]);
  std::string output;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fds[0], buf, sizeof buf)) > 0) {
    output.append(buf, static_cast<size_t>(n));
  }
  ::close(fds[0]);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus)) << "worker did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(wstatus), 0) << output;

  // The worker prints the reports, then one stats line. It must have
  // built nothing: every signature replays from the snapshot tier.
  std::string marker = "\n--stats closures_built=0 snapshot_hits=3\n";
  ASSERT_NE(output.find(marker), std::string::npos) << output;
  EXPECT_EQ(output.substr(0, output.size() - marker.size()), expected);
}

// --- robustness: hostile bytes fall back to a cold build -------------

class SnapshotRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(tmp_.ok());
    dir_ = tmp_.path();
    schema_ = BrokerSchema();
    ClosureCache saver(*schema_, options_, 64, nullptr, dir_);
    auto built = saver.GetOrBuild(kFullRoots);
    ASSERT_TRUE(built.ok());
    reference_digest_ = built.value()->closure->FactSetDigest();
    ASSERT_TRUE(saver.SaveCacheSnapshot(*built.value()).ok());
    path_ = SnapshotPath(dir_, options_, kFullRoots);
  }


  // The invariant all corruption cases share: the probe rejects the
  // file (counted invalid, no crash) and GetOrBuild still serves the
  // right answer via a cold build.
  void ExpectCountedFallback() {
    ClosureCache cache(*schema_, options_, 64, nullptr, dir_);
    EXPECT_EQ(cache.FindSnapshot(kFullRoots), nullptr);
    EXPECT_EQ(cache.stats().snapshot_invalid, 1u);
    auto rebuilt = cache.GetOrBuild(kFullRoots);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
    EXPECT_EQ(cache.stats().snapshot_invalid, 2u);
    EXPECT_EQ(cache.stats().cold_builds, 1u);
    EXPECT_FALSE(rebuilt.value()->closure->warm_started());
    EXPECT_EQ(rebuilt.value()->closure->FactSetDigest(), reference_digest_);
  }

  ScopedTempDir tmp_{"oodbsec_snapshot_test"};
  std::string dir_;
  std::string path_;
  std::unique_ptr<schema::Schema> schema_;
  ClosureOptions options_;
  std::string reference_digest_;
};

TEST_F(SnapshotRobustnessTest, MissingFileIsAMissNotAnError) {
  ClosureCache cache(*schema_, options_, 64, nullptr, dir_);
  EXPECT_EQ(cache.FindSnapshot({"calcSalary"}), nullptr);
  EXPECT_EQ(cache.stats().snapshot_misses, 1u);
  EXPECT_EQ(cache.stats().snapshot_invalid, 0u);
}

TEST_F(SnapshotRobustnessTest, TruncatedHeader) {
  WriteFileBytes(path_, ReadFileBytes(path_).substr(0, 12));
  ExpectCountedFallback();
}

TEST_F(SnapshotRobustnessTest, TruncatedPayloadBreaksChecksum) {
  std::string bytes = ReadFileBytes(path_);
  WriteFileBytes(path_, bytes.substr(0, bytes.size() / 2));
  ExpectCountedFallback();
}

TEST_F(SnapshotRobustnessTest, TruncatedPayloadWithRecomputedChecksum) {
  // The deeper case: the payload is cut short but the checksum is made
  // consistent again, so only the bounds-checked decoder can catch it.
  std::string bytes = ReadFileBytes(path_);
  constexpr size_t kHeaderSize = 32;  // magic 8 | u32 ×2 | u64 ×2
  ASSERT_GT(bytes.size(), kHeaderSize + 64);
  bytes.resize(bytes.size() - 33);
  uint64_t checksum =
      snapshot::Fnv1a64(std::string_view(bytes).substr(kHeaderSize));
  std::memcpy(bytes.data() + 24, &checksum, sizeof checksum);
  WriteFileBytes(path_, bytes);
  ExpectCountedFallback();
}

TEST_F(SnapshotRobustnessTest, FlippedPayloadByteBreaksChecksum) {
  std::string bytes = ReadFileBytes(path_);
  bytes[bytes.size() - 5] ^= 0x41;
  WriteFileBytes(path_, bytes);
  ExpectCountedFallback();
}

TEST_F(SnapshotRobustnessTest, WrongFormatVersion) {
  std::string bytes = ReadFileBytes(path_);
  bytes[8] ^= 0x7f;  // the u32 version lives at bytes 8..11
  WriteFileBytes(path_, bytes);
  ExpectCountedFallback();
}

TEST_F(SnapshotRobustnessTest, WrongSchemaFingerprintBytes) {
  std::string bytes = ReadFileBytes(path_);
  bytes[16] ^= 0x7f;  // the u64 fingerprint lives at bytes 16..23
  WriteFileBytes(path_, bytes);
  ExpectCountedFallback();
}

// Rewrites a native snapshot as the byte-identical twin a machine of
// the opposite endianness would have written: every multi-byte integer
// field — header and payload, walked structure-aware — is reversed in
// place, string bytes stay untouched, and the checksum is recomputed
// over the new payload bytes and stored swapped (a foreign writer
// checksums *its* payload bytes and stores the u64 in *its* order).
std::string SwapSnapshotEndianness(const std::string& bytes) {
  std::string out = bytes;
  size_t pos = 8;  // past "OODBSNAP"
  auto swap32 = [&out](size_t off) {
    std::reverse(out.begin() + static_cast<ptrdiff_t>(off),
                 out.begin() + static_cast<ptrdiff_t>(off + 4));
  };
  auto swap64 = [&out](size_t off) {
    std::reverse(out.begin() + static_cast<ptrdiff_t>(off),
                 out.begin() + static_cast<ptrdiff_t>(off + 8));
  };
  // Field values must be read *before* their bytes are reversed.
  auto u32_at = [&out](size_t off) {
    uint32_t v = 0;
    std::memcpy(&v, out.data() + off, sizeof v);
    return v;
  };
  swap32(pos), pos += 4;  // version
  swap32(pos), pos += 4;  // byte-order marker
  swap64(pos), pos += 8;  // schema fingerprint
  const size_t checksum_at = pos;
  pos += 8;  // checksum: rewritten below over the swapped payload
  const size_t payload_start = pos;
  auto swap_count = [&]() {
    uint32_t count = u32_at(pos);
    swap32(pos), pos += 4;
    return count;
  };
  auto swap_string = [&]() { pos += swap_count(); };
  for (uint32_t n = swap_count(); n > 0; --n) swap_string();  // roots
  swap_string();                                              // digest
  for (uint32_t n = swap_count(); n > 0; --n) swap_string();  // rules
  for (uint32_t n = swap_count(); n > 0; --n) {               // steps
    pos += 1;               // kind u8
    swap32(pos), pos += 4;  // a
    swap32(pos), pos += 4;  // b
    swap32(pos), pos += 4;  // origin.num
    pos += 1;               // origin.dir u8
    swap32(pos), pos += 4;  // rule index
    swap32(pos), pos += 4;  // premise offset
    swap32(pos), pos += 4;  // premise count
  }
  for (uint32_t n = swap_count(); n > 0; --n) {  // premise arena
    swap32(pos), pos += 4;
  }
  EXPECT_EQ(pos, out.size());
  uint64_t checksum = snapshot::Bswap64(
      snapshot::Fnv1a64(std::string_view(out).substr(payload_start)));
  std::memcpy(out.data() + checksum_at, &checksum, sizeof checksum);
  return out;
}

TEST_F(SnapshotRobustnessTest, ForeignEndianSnapshotDecodesBySwapping) {
  // A snapshot written on a machine of the opposite endianness is not
  // corruption: the mirrored marker arms the reader's swap-decode and
  // the full ladder (fingerprint, checksum, structure, digest) runs on
  // the decoded values. The replayed closure is byte-identical to the
  // native one.
  WriteFileBytes(path_, SwapSnapshotEndianness(ReadFileBytes(path_)));
  auto load = snapshot::LoadSnapshot(*schema_, options_, path_);
  ASSERT_TRUE(load.ok()) << load.status();
  EXPECT_EQ(load.value()->roots, kFullRoots);
  EXPECT_EQ(load.value()->closure->FactSetDigest(), reference_digest_);
  ClosureCache cache(*schema_, options_, 64, nullptr, dir_);
  EXPECT_NE(cache.FindSnapshot(kFullRoots), nullptr);
  EXPECT_EQ(cache.stats().snapshot_hits, 1u);
  EXPECT_EQ(cache.stats().snapshot_invalid, 0u);
}

TEST_F(SnapshotRobustnessTest, CorruptByteOrderMarkerIsRefused) {
  // A marker that is neither the native constant nor its mirror is
  // corruption, not foreignness — refused before any payload decode.
  std::string bytes = ReadFileBytes(path_);
  bytes[12] ^= 0x40;  // u32 marker lives at bytes 12..15
  WriteFileBytes(path_, bytes);
  auto load = snapshot::LoadSnapshot(*schema_, options_, path_);
  ASSERT_FALSE(load.ok());
  EXPECT_EQ(load.status().code(), common::StatusCode::kFailedPrecondition);
  EXPECT_NE(load.status().message().find("byte-order"), std::string::npos)
      << load.status();
  ExpectCountedFallback();
}

TEST_F(SnapshotRobustnessTest, SchemaDriftInvalidatesTheSnapshot) {
  // A real schema change (extra attribute) under the same file name:
  // the fingerprint check must reject and the cache must rebuild
  // against the *new* schema.
  auto drifted = DriftedBrokerSchema();
  ClosureCache cache(*drifted, options_, 64, nullptr, dir_);
  EXPECT_EQ(cache.FindSnapshot(kFullRoots), nullptr);
  EXPECT_EQ(cache.stats().snapshot_invalid, 1u);
  auto rebuilt = cache.GetOrBuild(kFullRoots);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(cache.stats().cold_builds, 1u);
}

TEST_F(SnapshotRobustnessTest, DirectLoadReportsNotFoundDistinctly) {
  auto missing = snapshot::LoadSnapshot(*schema_, options_,
                                        common::StrCat(dir_, "/absent.snap"));
  EXPECT_EQ(missing.status().code(), common::StatusCode::kNotFound);
  std::string garbage_path = common::StrCat(dir_, "/garbage.snap");
  WriteFileBytes(garbage_path, "definitely not a snapshot");
  auto garbage = snapshot::LoadSnapshot(*schema_, options_, garbage_path);
  EXPECT_EQ(garbage.status().code(),
            common::StatusCode::kFailedPrecondition);
}

// --- shard coordinator ----------------------------------------------

TEST(ShardTest, ShardOfIsStableAndInRange) {
  Fleet fleet = MakeFleet();
  std::set<int> seen;
  for (const core::Requirement& requirement : fleet.sheet) {
    const schema::User* user = fleet.users->Find(requirement.user);
    ASSERT_NE(user, nullptr);
    std::string signature = service::CapabilitySignature(
        *fleet.schema, *user, core::ClosureOptions{});
    int shard = service::ShardOf(signature, 4);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
    EXPECT_EQ(shard, service::ShardOf(signature, 4)) << "unstable";
    EXPECT_EQ(service::ShardOf(signature, 1), 0);
    seen.insert(shard);
  }
  // Same-role users must land on the same shard (same signature).
  const schema::User* a = fleet.users->Find("clerk0");
  const schema::User* b = fleet.users->Find("clerk1");
  EXPECT_EQ(
      service::ShardOf(service::CapabilitySignature(*fleet.schema, *a, {}), 4),
      service::ShardOf(service::CapabilitySignature(*fleet.schema, *b, {}),
                       4));
}

TEST(ShardTest, ShardedBatchMatchesSingleProcessByteForByte) {
  Fleet fleet = MakeFleet();
  // Fork first: no thread pool may exist yet (see shard.h).
  service::ShardOptions options;
  options.shard_count = 4;
  auto sharded = service::RunShardedBatch(*fleet.schema, *fleet.users,
                                          fleet.sheet, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status();

  service::AnalysisService svc(*fleet.schema, *fleet.users,
                               MakeServiceOptions(2));
  auto batch = svc.CheckBatch(fleet.sheet);
  ASSERT_TRUE(batch.ok()) << batch.status();

  ASSERT_EQ(sharded->reports.size(), batch.value().size());
  for (size_t i = 0; i < batch.value().size(); ++i) {
    EXPECT_EQ(sharded->reports[i].ToString(), batch.value()[i].ToString())
        << "requirement " << i;
  }
  service::ServiceStats single = svc.Stats();
  EXPECT_EQ(sharded->merged_stats.checks, single.checks);
  EXPECT_EQ(sharded->merged_stats.closures_built, single.closures_built);
  size_t routed = 0;
  for (size_t count : sharded->shard_requirements) routed += count;
  EXPECT_EQ(routed, fleet.sheet.size());
}

TEST(ShardTest, SingleShardAndManyShardsAgree) {
  Fleet fleet = MakeFleet();
  service::ShardOptions one;
  one.shard_count = 1;
  auto single = service::RunShardedBatch(*fleet.schema, *fleet.users,
                                         fleet.sheet, one);
  ASSERT_TRUE(single.ok()) << single.status();
  service::ShardOptions many;
  many.shard_count = 7;  // more shards than signatures
  auto wide = service::RunShardedBatch(*fleet.schema, *fleet.users,
                                       fleet.sheet, many);
  ASSERT_TRUE(wide.ok()) << wide.status();
  ASSERT_EQ(single->reports.size(), wide->reports.size());
  for (size_t i = 0; i < single->reports.size(); ++i) {
    EXPECT_EQ(single->reports[i].ToString(), wide->reports[i].ToString());
  }
}

TEST(ShardTest, UnknownUserErrorMatchesCheckBatch) {
  Fleet fleet = MakeFleet();
  auto ghost = core::ParseRequirementString("(ghost, r_salary(x) : ti)");
  ASSERT_TRUE(ghost.ok());
  // Insert mid-sheet: earlier requirements succeed, so the unknown user
  // is the earliest failure — in both runs.
  fleet.sheet.insert(fleet.sheet.begin() + 2, std::move(ghost).value());

  service::ShardOptions options;
  options.shard_count = 3;
  auto sharded = service::RunShardedBatch(*fleet.schema, *fleet.users,
                                          fleet.sheet, options);
  ASSERT_FALSE(sharded.ok());

  service::AnalysisService svc(*fleet.schema, *fleet.users,
                               MakeServiceOptions(2));
  auto batch = svc.CheckBatch(fleet.sheet);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(sharded.status().code(), batch.status().code());
  EXPECT_EQ(sharded.status().message(), batch.status().message());
}

TEST(ShardTest, ShardedWorkersShareTheSnapshotTier) {
  ScopedTempDir tmp("oodbsec_snapshot_test");
  ASSERT_TRUE(tmp.ok());
  const std::string& dir = tmp.path();
  Fleet fleet = MakeFleet();
  service::ShardOptions options;
  options.shard_count = 4;
  options.snapshot_dir = dir;
  options.save_snapshots = true;

  auto cold = service::RunShardedBatch(*fleet.schema, *fleet.users,
                                       fleet.sheet, options);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold->merged_stats.closures_built, 3u);
  EXPECT_EQ(cold->merged_stats.snapshot_hits, 0u);

  auto warm = service::RunShardedBatch(*fleet.schema, *fleet.users,
                                       fleet.sheet, options);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ(warm->merged_stats.closures_built, 0u);
  EXPECT_EQ(warm->merged_stats.snapshot_hits, 3u);
  ASSERT_EQ(cold->reports.size(), warm->reports.size());
  for (size_t i = 0; i < cold->reports.size(); ++i) {
    EXPECT_EQ(cold->reports[i].ToString(), warm->reports[i].ToString());
  }
}

}  // namespace

// Worker mode for the cross-process fixture: audit the fleet against a
// snapshot directory and print reports + a stats marker.
int RunSnapshotWorker(const std::string& dir) {
  Fleet fleet = MakeFleet();
  service::AnalysisService svc(*fleet.schema, *fleet.users,
                               MakeServiceOptions(2, dir));
  auto reports = svc.CheckBatch(fleet.sheet);
  if (!reports.ok()) {
    std::fprintf(stderr, "%s\n", reports.status().ToString().c_str());
    return 1;
  }
  for (const core::AnalysisReport& report : reports.value()) {
    std::fputs(report.ToString().c_str(), stdout);
  }
  service::ServiceStats stats = svc.Stats();
  std::printf("\n--stats closures_built=%zu snapshot_hits=%zu\n",
              stats.closures_built, stats.snapshot_hits);
  return 0;
}

}  // namespace oodbsec

int main(int argc, char** argv) {
  g_argv0 = argv[0];
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--snapshot-worker") {
      return oodbsec::RunSnapshotWorker(argv[i + 1]);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
