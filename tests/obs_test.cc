// The observability subsystem: span nesting and lifecycle, the
// disabled-mode zero-allocation guarantee, counters, histograms,
// registry snapshots, and both trace sinks (the JSON-lines one against
// a golden transcript).
#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/sink.h"
#include "obs/trace.h"

// Global allocation counter for the zero-allocation test. Counting
// operator new is the only way to observe "this code path allocates"
// without a heap profiler; everything else in the binary just pays one
// relaxed increment per allocation.
static std::atomic<size_t> g_allocations{0};

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size)) return ptr;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size)) return ptr;
  throw std::bad_alloc();
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace oodbsec {
namespace {

TEST(TracerTest, ScopedSpansNestViaThreadLocalParent) {
  obs::Tracer tracer(true);
  {
    obs::ScopedSpan outer(&tracer, "outer");
    {
      obs::ScopedSpan inner(&tracer, "inner");
      obs::ScopedSpan innermost(&tracer, "innermost");
    }
    obs::ScopedSpan sibling(&tracer, "sibling");
  }
  std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, obs::kNoSpan);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "innermost");
  EXPECT_EQ(spans[2].parent, spans[1].id);
  EXPECT_EQ(spans[2].depth, 2);
  // The sibling opens after innermost closes: its parent is outer
  // again, proving destruction pops the thread-local stack.
  EXPECT_EQ(spans[3].name, "sibling");
  EXPECT_EQ(spans[3].parent, spans[0].id);
  for (const obs::SpanRecord& span : spans) {
    EXPECT_GE(span.duration_ns, 0) << span.name << " never closed";
  }
  // Children are fully contained in their parents.
  EXPECT_LE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_GE(spans[0].start_ns + spans[0].duration_ns,
            spans[1].start_ns + spans[1].duration_ns);
}

TEST(TracerTest, ExplicitParentCrossesThreads) {
  obs::Tracer tracer(true);
  {
    obs::ScopedSpan root(&tracer, "submit-side");
    obs::SpanId parent = root.id();
    std::thread worker([&tracer, parent] {
      obs::ScopedSpan task(&tracer, "worker-task", parent);
      // Thread-local nesting resumes under the explicit parent.
      obs::ScopedSpan step(&tracer, "worker-step");
    });
    worker.join();
  }
  std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[1].name, "worker-task");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "worker-step");
  EXPECT_EQ(spans[2].parent, spans[1].id);
  EXPECT_EQ(spans[2].depth, 2);
}

TEST(TracerTest, DisabledAndNullSpansAllocateNothing) {
  obs::Tracer disabled(false);
  // Warm up any lazy thread-local machinery outside the measured block.
  { obs::ScopedSpan warmup(&disabled, "warmup"); }

  size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    obs::ScopedSpan null_tracer(nullptr, "a");
    obs::ScopedSpan disabled_tracer(&disabled, "b");
    obs::ScopedSpan with_parent(&disabled, "c", obs::kNoSpan);
    obs::ScopedSpan inert;
  }
  size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "disabled spans must not touch the heap";
  EXPECT_EQ(disabled.span_count(), 0u);
}

TEST(TracerTest, EnableRestartsRecordingDisableKeepsIt) {
  obs::Tracer tracer(true);
  { obs::ScopedSpan span(&tracer, "first"); }
  EXPECT_EQ(tracer.span_count(), 1u);

  tracer.set_enabled(false);
  { obs::ScopedSpan span(&tracer, "ignored"); }
  EXPECT_EQ(tracer.span_count(), 1u);  // kept, nothing added

  tracer.set_enabled(true);  // re-arming starts a fresh recording
  EXPECT_EQ(tracer.span_count(), 0u);
  { obs::ScopedSpan span(&tracer, "second"); }
  std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "second");
}

TEST(MetricsTest, CountersAccumulateAcrossThreads) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.counter("test.hits");
  EXPECT_EQ(counter, registry.counter("test.hits"));  // stable handle
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < 1000; ++i) counter->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  counter->Increment(58);
  EXPECT_EQ(counter->value(), 4058u);
}

TEST(MetricsTest, HistogramUsesLogTwoBuckets) {
  obs::MetricsRegistry registry;
  obs::Histogram* histogram = registry.histogram("test.depth");
  histogram->Record(0);  // bucket 0
  histogram->Record(1);  // bucket 1: [1, 2)
  histogram->Record(2);  // bucket 2: [2, 4)
  histogram->Record(3);  // bucket 2
  histogram->Record(4);  // bucket 3: [4, 8)
  histogram->Record(1023);  // bucket 10: [512, 1024)
  EXPECT_EQ(histogram->count(), 6u);
  EXPECT_EQ(histogram->sum(), 1033u);
  EXPECT_EQ(histogram->bucket(0), 1u);
  EXPECT_EQ(histogram->bucket(1), 1u);
  EXPECT_EQ(histogram->bucket(2), 2u);
  EXPECT_EQ(histogram->bucket(3), 1u);
  EXPECT_EQ(histogram->bucket(10), 1u);
}

TEST(MetricsTest, SnapshotIsSortedAndTrimmed) {
  obs::MetricsRegistry registry;
  registry.counter("z.last")->Increment(7);
  registry.histogram("m.middle")->Record(5);
  registry.counter("a.first");
  std::vector<obs::MetricSnapshot> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "a.first");
  EXPECT_EQ(snapshot[0].kind, obs::MetricSnapshot::Kind::kCounter);
  EXPECT_EQ(snapshot[0].value, 0u);
  EXPECT_EQ(snapshot[1].name, "m.middle");
  EXPECT_EQ(snapshot[1].kind, obs::MetricSnapshot::Kind::kHistogram);
  EXPECT_EQ(snapshot[1].value, 1u);
  EXPECT_EQ(snapshot[1].sum, 5u);
  // Trailing zero buckets trimmed: value 5 lands in bucket 3.
  EXPECT_EQ(snapshot[1].buckets.size(), 4u);
  EXPECT_EQ(snapshot[1].buckets.back(), 1u);
  EXPECT_EQ(snapshot[2].name, "z.last");
  EXPECT_EQ(snapshot[2].value, 7u);
}

// The JSON-lines format is a stable artifact (the bench harness writes
// it next to BENCH_*.json), so pin it byte for byte on handcrafted
// records — real tracer output would vary by timing.
TEST(SinkTest, JsonLinesMatchesGoldenTranscript) {
  std::ostringstream out;
  obs::JsonLinesSink sink(out);
  sink.BeginDump();
  obs::SpanRecord root;
  root.name = "batch";
  root.id = 0;
  root.parent = obs::kNoSpan;
  root.depth = 0;
  root.start_ns = 120;
  root.duration_ns = 5000;
  sink.WriteSpan(root);
  obs::SpanRecord child;
  child.name = "batch.\"plan\"";  // exercises string escaping
  child.id = 1;
  child.parent = 0;
  child.depth = 1;
  child.start_ns = 150;
  child.duration_ns = -1;  // still open
  sink.WriteSpan(child);
  obs::MetricSnapshot counter;
  counter.name = "service.checks";
  counter.kind = obs::MetricSnapshot::Kind::kCounter;
  counter.value = 64;
  sink.WriteMetric(counter);
  obs::MetricSnapshot histogram;
  histogram.name = "pool.queue_depth";
  histogram.kind = obs::MetricSnapshot::Kind::kHistogram;
  histogram.value = 3;
  histogram.sum = 9;
  histogram.buckets = {0, 1, 2};
  sink.WriteMetric(histogram);
  sink.EndDump();

  EXPECT_EQ(out.str(),
            "{\"type\":\"span\",\"name\":\"batch\",\"id\":0,"
            "\"parent\":-1,\"depth\":0,\"start_ns\":120,"
            "\"duration_ns\":5000}\n"
            "{\"type\":\"span\",\"name\":\"batch.\\\"plan\\\"\",\"id\":1,"
            "\"parent\":0,\"depth\":1,\"start_ns\":150,"
            "\"duration_ns\":-1}\n"
            "{\"type\":\"counter\",\"name\":\"service.checks\","
            "\"value\":64}\n"
            "{\"type\":\"histogram\",\"name\":\"pool.queue_depth\","
            "\"count\":3,\"sum\":9,\"buckets\":[0,1,2]}\n");
}

TEST(SinkTest, EmitStreamsSpansThenMetrics) {
  obs::Observability obs;
  obs.tracer.set_enabled(true);
  {
    obs::ScopedSpan root(&obs.tracer, "root");
    obs::ScopedSpan child(&obs.tracer, "child");
  }
  obs.metrics.counter("layer.things")->Increment(3);

  std::ostringstream out;
  obs::JsonLinesSink sink(out);
  obs::Emit(obs, sink);
  std::string text = out.str();
  size_t root_at = text.find("\"name\":\"root\"");
  size_t child_at = text.find("\"name\":\"child\"");
  size_t metric_at = text.find("\"name\":\"layer.things\"");
  EXPECT_NE(root_at, std::string::npos);
  EXPECT_NE(child_at, std::string::npos);
  EXPECT_NE(metric_at, std::string::npos);
  EXPECT_LT(root_at, child_at);    // spans in start order
  EXPECT_LT(child_at, metric_at);  // then metrics
}

TEST(SinkTest, ConsoleTableShowsTreeAndPercentages) {
  obs::Observability obs;
  obs.tracer.set_enabled(true);
  {
    obs::ScopedSpan root(&obs.tracer, "closure");
    obs::ScopedSpan child(&obs.tracer, "closure.fixpoint");
  }
  obs.metrics.counter("closure.facts.total")->Increment(42);

  std::ostringstream out;
  obs::ConsoleTableSink sink(out);
  obs::Emit(obs, sink);
  std::string text = out.str();
  EXPECT_NE(text.find("closure"), std::string::npos);
  EXPECT_NE(text.find("closure.fixpoint"), std::string::npos);
  EXPECT_NE(text.find("closure.facts.total"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find('%'), std::string::npos);
  // The child row is indented under its root.
  size_t child_line = text.find("  closure.fixpoint");
  EXPECT_NE(child_line, std::string::npos);
}

}  // namespace
}  // namespace oodbsec
