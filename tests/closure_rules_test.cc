// Per-rule coverage of the static inference system F(F) (paper Table 2,
// experiment T2): every axiom and rule family demonstrated on a minimal
// crafted workload, including the provenance guards that block feedback.
#include <gtest/gtest.h>

#include "common/strings.h"
#include "core/analyzer.h"
#include "core/closure.h"
#include "core/requirement.h"
#include "schema/user.h"
#include "unfold/unfolded.h"

namespace oodbsec::core {
namespace {

using unfold::NodeKind;
using unfold::UnfoldedSet;

// Builds a schema from (name, params, return, body) tuples over one
// class C with int attributes a, b and a C-typed attribute link.
std::unique_ptr<schema::Schema> MakeSchema(
    std::vector<std::array<std::string, 4>> functions) {
  schema::SchemaBuilder builder;
  builder.AddClass("C", {{"a", "int"}, {"b", "int"}, {"link", "C"}});
  for (auto& [name, params, ret, body] : functions) {
    std::vector<schema::SchemaBuilder::ParamSpec> specs;
    if (!params.empty()) {
      for (const std::string& piece : common::Split(params, ';')) {
        auto parts = common::Split(piece, ':');
        specs.push_back({std::string(common::StripWhitespace(parts[0])),
                         std::string(common::StripWhitespace(parts[1]))});
      }
    }
    builder.AddFunction(name, std::move(specs), ret, body);
  }
  auto result = std::move(builder).Build();
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

std::unique_ptr<UnfoldedSet> Unfold(const schema::Schema& schema,
                                    std::vector<std::string> roots) {
  auto result = UnfoldedSet::Build(schema, roots);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

// Finds the first occurrence satisfying `pred`.
template <typename Pred>
int FindNode(const UnfoldedSet& set, Pred pred) {
  for (int i = 1; i <= set.node_count(); ++i) {
    if (pred(*set.node(i))) return i;
  }
  return 0;
}

// --- Axioms (Table 2, rules 1-3) ---

TEST(Table2Axioms, OuterArgumentsAreAlterableAndKnown) {
  auto schema = MakeSchema({{"f", "x:int", "int", "x + 1"}});
  auto set = Unfold(*schema, {"f"});
  Closure closure(*set);
  int x = FindNode(*set, [](const unfold::Node& n) {
    return n.kind == NodeKind::kVarRef;
  });
  ASSERT_NE(x, 0);
  EXPECT_TRUE(closure.HasTa(x));
  EXPECT_TRUE(closure.HasPa(x));  // via ta => pa
  EXPECT_TRUE(closure.HasTi(x));
  EXPECT_TRUE(closure.HasPi(x));  // via ti => pi
}

TEST(Table2Axioms, ConstantsAreKnownButNotAlterable) {
  auto schema = MakeSchema({{"f", "x:int", "int", "x + 7"}});
  auto set = Unfold(*schema, {"f"});
  Closure closure(*set);
  int c = FindNode(*set, [](const unfold::Node& n) {
    return n.kind == NodeKind::kConstant;
  });
  ASSERT_NE(c, 0);
  EXPECT_TRUE(closure.HasTi(c));
  EXPECT_FALSE(closure.HasTa(c));
  EXPECT_FALSE(closure.HasPa(c));
}

TEST(Table2Axioms, RootBodyIsObserved) {
  auto schema = MakeSchema({{"f", "o:C", "int", "r_a(o)"}});
  auto set = Unfold(*schema, {"f"});
  Closure closure(*set);
  EXPECT_TRUE(closure.HasTi(set->roots()[0].body->id));
}

TEST(Table2Axioms, SameVariableOccurrencesAreEqual) {
  auto schema = MakeSchema({{"f", "x:int", "int", "x + x"}});
  auto set = Unfold(*schema, {"f"});
  Closure closure(*set);
  // Occurrences 1 and 2 are the two x's.
  EXPECT_EQ(set->node(1)->kind, NodeKind::kVarRef);
  EXPECT_EQ(set->node(2)->kind, NodeKind::kVarRef);
  EXPECT_TRUE(closure.AreEqual(1, 2));
}

TEST(Table2Axioms, SameTypeOuterArgumentsAreEqualPessimistically) {
  auto schema = MakeSchema({{"f", "x:int", "int", "x + 1"},
                            {"g", "y:int", "int", "y + 2"}});
  auto set = Unfold(*schema, {"f", "g"});
  Closure closure(*set);
  int x = 1, y = 4;  // f: 1:x 2:1 3:+ ; g: 4:y 5:2 6:+
  ASSERT_EQ(set->node(x)->kind, NodeKind::kVarRef);
  ASSERT_EQ(set->node(y)->kind, NodeKind::kVarRef);
  EXPECT_TRUE(closure.AreEqual(x, y));

  ClosureOptions off;
  off.same_type_argument_equality = false;
  Closure ablated(*set, off);
  EXPECT_FALSE(ablated.AreEqual(x, y));
}

TEST(Table2Axioms, DifferentTypeOuterArgumentsAreNotEqual) {
  auto schema = MakeSchema({{"f", "x:int", "int", "x + 1"},
                            {"g", "o:C", "int", "r_a(o)"}});
  auto set = Unfold(*schema, {"f", "g"});
  Closure closure(*set);
  EXPECT_FALSE(closure.AreEqual(1, 4));  // 1:x (int), 4:o (C)
}

TEST(Table2Axioms, LetBindingEqualsVariableAndBodyEqualsLet) {
  auto schema = MakeSchema({{"g", "y:int", "int", "y * 2"},
                            {"f", "x:int", "int", "g(x + 1)"}});
  auto set = Unfold(*schema, {"f"});
  Closure closure(*set);
  // f unfolds to: 1:x 2:1 3:+ 4:y 5:2 6:* 7:let(g).
  EXPECT_EQ(set->node(7)->kind, NodeKind::kLet);
  EXPECT_TRUE(closure.AreEqual(3, 4));  // bound expr = variable
  EXPECT_TRUE(closure.AreEqual(6, 7));  // body = let value
}

// --- Alterability rules (Table 2, rule 1) ---

TEST(Table2Alterability, ReadObjectChoicePerturbsRead) {
  auto schema = MakeSchema({{"f", "o:C", "int", "r_a(o)"}});
  auto set = Unfold(*schema, {"f"});
  Closure closure(*set);
  int read = FindNode(*set, [](const unfold::Node& n) {
    return n.kind == NodeKind::kReadAttr;
  });
  EXPECT_TRUE(closure.HasPa(read));
  EXPECT_FALSE(closure.HasTa(read));  // default: partial reading

  ClosureOptions total;
  total.read_object_total_alterability = true;
  Closure strict(*set, total);
  EXPECT_TRUE(strict.HasTa(read));
}

TEST(Table2Alterability, WrittenValueTotalReachesEqualObjectReads) {
  auto schema = MakeSchema({{"f", "o:C", "int", "r_a(o)"}});
  auto set = Unfold(*schema, {"f", "w_a"});
  Closure closure(*set);
  int read = FindNode(*set, [](const unfold::Node& n) {
    return n.kind == NodeKind::kReadAttr;
  });
  // The write's value argument is a totally alterable root argument;
  // its object is same-type-equal to f's o.
  EXPECT_TRUE(closure.HasTa(read));
}

TEST(Table2Alterability, WriteToOtherAttributeDoesNotReach) {
  auto schema = MakeSchema({{"f", "o:C", "int", "r_a(o)"}});
  auto set = Unfold(*schema, {"f", "w_b"});
  Closure closure(*set);
  int read = FindNode(*set, [](const unfold::Node& n) {
    return n.kind == NodeKind::kReadAttr && n.attribute == "a";
  });
  EXPECT_FALSE(closure.HasTa(read));
}

TEST(Table2Alterability, WriteObjectChoiceTotallyAltersReads) {
  // The user controls *which* object a write inside f targets; every
  // read of that attribute may then be redirected at. Use distinct
  // argument types (int vs C) so the same-type equality axiom cannot
  // provide the link; the rule under test must.
  auto schema = MakeSchema(
      {{"putThere", "o:C;v:int", "null", "w_a(r_link(o), v)"},
       {"g", "p:C", "int", "r_a(p)"}});
  auto set = Unfold(*schema, {"putThere", "g"});
  Closure closure(*set);
  int read = FindNode(*set, [&](const unfold::Node& n) {
    return n.kind == NodeKind::kReadAttr && n.attribute == "a";
  });
  ASSERT_NE(read, 0);
  // r_link(o) is perturbable (object choice on o), so the write target
  // is, so the read of a is totally alterable.
  EXPECT_TRUE(closure.HasTa(read));
}

TEST(Table2Alterability, LetBindingPropagatesToVariableAndBody) {
  auto schema = MakeSchema({{"g", "y:int", "int", "y + 1"},
                            {"f", "x:int", "int", "g(x * 2)"}});
  auto set = Unfold(*schema, {"f"});
  Closure closure(*set);
  // 1:x 2:2 3:* 4:y 5:1 6:+ 7:let(g)
  EXPECT_TRUE(closure.HasTa(3));  // *: sweep left from ta[x]
  EXPECT_TRUE(closure.HasTa(4));  // let: bound expression to variable
  EXPECT_TRUE(closure.HasTa(6));  // +: sweep left
  EXPECT_TRUE(closure.HasTa(7));  // let: body to let value
}

// --- Inferability rules (Table 2, rule 2) ---

TEST(Table2Inferability, EqualityPropagatesInferability) {
  // v (known root arg of w_a) = the read of a on an equal object.
  auto schema = MakeSchema({{"f", "o:C", "int", "r_a(o) + 1"}});
  auto set = Unfold(*schema, {"f", "w_a"});
  Closure closure(*set);
  int read = FindNode(*set, [](const unfold::Node& n) {
    return n.kind == NodeKind::kReadAttr;
  });
  EXPECT_TRUE(closure.HasTi(read));
}

TEST(Table2Inferability, PiJoinToTi) {
  // Two differently-obtained partial inferabilities on the same read:
  // abs gives {-v, v}; the sign test pins the sign.
  auto schema = MakeSchema({{"mag", "o:C", "int", "abs(r_a(o))"},
                            {"pos", "o:C", "bool", "r_a(o) >= 0"}});
  auto set = Unfold(*schema, {"mag", "pos"});
  Closure closure(*set);
  int read = FindNode(*set, [](const unfold::Node& n) {
    return n.kind == NodeKind::kReadAttr;
  });
  EXPECT_TRUE(closure.HasTi(read));

  ClosureOptions off;
  off.pi_join_to_ti = false;
  Closure ablated(*set, off);
  EXPECT_FALSE(ablated.HasTi(read));
  EXPECT_TRUE(ablated.HasPi(read));  // each partial alone survives
}

TEST(Table2Inferability, SinglePartialSourceDoesNotBecomeTotal) {
  // abs alone: only one origin of partial inferability -> no join.
  auto schema = MakeSchema({{"mag", "o:C", "int", "abs(r_a(o))"}});
  auto set = Unfold(*schema, {"mag"});
  Closure closure(*set);
  int read = FindNode(*set, [](const unfold::Node& n) {
    return n.kind == NodeKind::kReadAttr;
  });
  EXPECT_TRUE(closure.HasPi(read));
  EXPECT_FALSE(closure.HasTi(read));
}

TEST(Table2Inferability, FeedbackGuardBlocksSelfJustification) {
  // A single observed comparison between two unknown reads must not
  // bootstrap total inferability on either: every inference about them
  // originates from the same occurrence and direction.
  auto schema = MakeSchema({{"cmp", "o:C", "bool", "r_a(o) >= r_b(o)"}});
  auto set = Unfold(*schema, {"cmp"});
  Closure closure(*set);
  int read_a = FindNode(*set, [](const unfold::Node& n) {
    return n.kind == NodeKind::kReadAttr && n.attribute == "a";
  });
  int read_b = FindNode(*set, [](const unfold::Node& n) {
    return n.kind == NodeKind::kReadAttr && n.attribute == "b";
  });
  EXPECT_FALSE(closure.HasTi(read_a));
  EXPECT_FALSE(closure.HasTi(read_b));
  EXPECT_FALSE(closure.HasPi(read_a));
  EXPECT_FALSE(closure.HasPi(read_b));
}

TEST(Table2Inferability, ReadsOfEqualObjectsAreEqual) {
  // Two functions both read attribute a of same-type arguments: the
  // reads are recognizably equal, so observing one infers the other.
  auto schema = MakeSchema({{"get", "o:C", "int", "r_a(o)"},
                            {"user2", "p:C", "bool", "r_a(p) >= 5"}});
  auto set = Unfold(*schema, {"get", "user2"});
  Closure closure(*set);
  int read_in_user2 = FindNode(*set, [](const unfold::Node& n) {
    return n.kind == NodeKind::kReadAttr && n.id > 2;
  });
  ASSERT_NE(read_in_user2, 0);
  // get's result is observed and equals its read, which equals user2's
  // read (equal objects).
  EXPECT_TRUE(closure.HasTi(read_in_user2));
}

// --- pi* rules ---

TEST(Table2PiStar, ComparisonOutcomePairsOperandsThroughProducts) {
  // cmp(o) = r_a(o) >= r_b(o) and both reads exposed through separate
  // linear getters: the pair constraint plus the getters' invertibility
  // makes everything totally inferable.
  auto schema = MakeSchema({{"geta", "o:C", "int", "r_a(o) + 3"},
                            {"getb", "o:C", "int", "r_b(o) + 4"}});
  auto set = Unfold(*schema, {"geta", "getb"});
  Closure closure(*set);
  int read_a = FindNode(*set, [](const unfold::Node& n) {
    return n.kind == NodeKind::kReadAttr && n.attribute == "a";
  });
  // ti[+] observed, ti[3] constant -> invert -> ti[r_a].
  EXPECT_TRUE(closure.HasTi(read_a));
}

// --- Requirement sites and A(R) plumbing on crafted workloads ---

TEST(Table2Sites, IndirectSitesSeeBoundExpressions) {
  auto schema = MakeSchema({{"leak", "x:int", "int", "x"},
                            {"wrap", "o:C", "int", "leak(r_a(o))"}});
  schema::UserRegistry users(*schema);
  ASSERT_TRUE(users.AddUser("u").ok());
  ASSERT_TRUE(users.Grant("u", "wrap").ok());
  auto req = ParseRequirementString("(u, leak(x : pa))");
  ASSERT_TRUE(req.ok());
  auto report = CheckRequirement(*schema, users, req.value());
  ASSERT_TRUE(report.ok()) << report.status();
  // leak's argument inside wrap is r_a(o): perturbable via object
  // choice -> the indirect invocation site violates the requirement.
  EXPECT_FALSE(report->satisfied);
  EXPECT_FALSE(report->flaws[0].is_root_site);
}

TEST(Table2Sites, FunctionNeverInvokedIsSatisfied) {
  auto schema = MakeSchema({{"leak", "x:int", "int", "x"},
                            {"other", "o:C", "int", "r_a(o)"}});
  schema::UserRegistry users(*schema);
  ASSERT_TRUE(users.AddUser("u").ok());
  ASSERT_TRUE(users.Grant("u", "other").ok());
  auto req = ParseRequirementString("(u, leak(x : pa) : ti)");
  ASSERT_TRUE(req.ok());
  auto report = CheckRequirement(*schema, users, req.value());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->satisfied);
}

TEST(Table2Sites, AllListedCapabilitiesMustHoldAtOneSite) {
  // ti holds on the read (write grants it) but ta does not (no direct
  // write path into the *argument* beyond pa): a requirement listing
  // both must check them at the same site.
  auto schema = MakeSchema({{"get", "o:C", "int", "r_a(o) + 1"}});
  schema::UserRegistry users(*schema);
  ASSERT_TRUE(users.AddUser("u").ok());
  ASSERT_TRUE(users.Grant("u", "get").ok());
  // Without w_a: pi holds (invert from observed result)...
  auto pi_req = ParseRequirementString("(u, r_a(x) : pi)");
  ASSERT_TRUE(pi_req.ok());
  auto pi_report = CheckRequirement(*schema, users, pi_req.value());
  ASSERT_TRUE(pi_report.ok());
  EXPECT_FALSE(pi_report->satisfied);
  // ...but pi together with ta does not (nothing grants write access).
  auto both_req = ParseRequirementString("(u, r_a(x) : pi : ta)");
  ASSERT_TRUE(both_req.ok());
  auto both_report = CheckRequirement(*schema, users, both_req.value());
  ASSERT_TRUE(both_report.ok());
  EXPECT_TRUE(both_report->satisfied);
}

// --- Derivation machinery ---

TEST(Derivations, EveryFactHasPrintableDerivation) {
  auto schema = MakeSchema({{"cmp", "o:C", "bool", "r_a(o) >= 2 * r_b(o)"}});
  auto set = Unfold(*schema, {"cmp", "w_b"});
  Closure closure(*set);
  for (size_t i = 0; i < closure.fact_count(); ++i) {
    std::string text = closure.ExplainFact(static_cast<FactId>(i));
    EXPECT_FALSE(text.empty());
    // Premises precede conclusions: the last line is the fact itself.
    EXPECT_NE(text.find(closure.FactToString(closure.steps()[i].fact)),
              std::string::npos);
  }
}

TEST(Derivations, PremisesAlwaysPrecedeConclusions) {
  auto schema = MakeSchema({{"cmp", "o:C", "bool", "r_a(o) >= 2 * r_b(o)"}});
  auto set = Unfold(*schema, {"cmp", "w_a", "w_b"});
  Closure closure(*set);
  for (size_t i = 0; i < closure.fact_count(); ++i) {
    for (FactId premise : closure.premises(static_cast<FactId>(i))) {
      EXPECT_LT(premise, static_cast<FactId>(i));
      EXPECT_GE(premise, 0);
    }
  }
}

// --- Parameterized sweep: comparison operators behave uniformly ---

class ComparisonOperatorSweep : public ::testing::TestWithParam<const char*> {
};

TEST_P(ComparisonOperatorSweep, ProbingLeaksThroughEveryComparison) {
  std::string body = common::StrCat("r_a(o) ", GetParam(), " t");
  auto schema = MakeSchema({{"test", "o:C;t:int", "bool", body}});
  auto set = Unfold(*schema, {"test"});
  Closure closure(*set);
  int read = FindNode(*set, [](const unfold::Node& n) {
    return n.kind == NodeKind::kReadAttr;
  });
  // The caller-controlled threshold makes the hidden side of any
  // comparison totally inferable (the probe rule).
  EXPECT_TRUE(closure.HasTi(read)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllOperators, ComparisonOperatorSweep,
                         ::testing::Values(">=", "<=", ">", "<", "==",
                                           "!="));

// Arithmetic wrappers leak their operand once the result is observed
// and the other operand is a constant.
class InvertibleOperatorSweep
    : public ::testing::TestWithParam<const char*> {};

TEST_P(InvertibleOperatorSweep, ConstantWrapperLeaksOperand) {
  std::string body = common::StrCat("r_a(o) ", GetParam(), " 7");
  auto schema = MakeSchema({{"get", "o:C", "int", body}});
  auto set = Unfold(*schema, {"get"});
  Closure closure(*set);
  int read = FindNode(*set, [](const unfold::Node& n) {
    return n.kind == NodeKind::kReadAttr;
  });
  EXPECT_TRUE(closure.HasTi(read)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PlusMinusTimes, InvertibleOperatorSweep,
                         ::testing::Values("+", "-", "*"));

// Division truncates: only partial inferability.
TEST(Table2Inferability, DivisionWrapperLeaksOnlyPartially) {
  auto schema = MakeSchema({{"get", "o:C", "int", "r_a(o) / 7"}});
  auto set = Unfold(*schema, {"get"});
  Closure closure(*set);
  int read = FindNode(*set, [](const unfold::Node& n) {
    return n.kind == NodeKind::kReadAttr;
  });
  EXPECT_TRUE(closure.HasPi(read));
  EXPECT_FALSE(closure.HasTi(read));
}

}  // namespace
}  // namespace oodbsec::core
