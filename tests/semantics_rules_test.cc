// Per-rule coverage of the semantic inference system I(E) (paper
// Table 1, experiment T1): each axiom and rule family demonstrated
// through the projection solver on crafted executions.
#include <gtest/gtest.h>

#include "common/strings.h"
#include "semantics/execution.h"
#include "semantics/inference.h"

namespace oodbsec::semantics {
namespace {

using types::Oid;
using types::Value;

struct World {
  std::unique_ptr<schema::Schema> schema;
  std::unique_ptr<store::Database> db;
  Oid obj;

  World(std::vector<std::array<std::string, 4>> functions,
        int64_t a_value, int64_t b_value) {
    schema::SchemaBuilder builder;
    builder.AddClass("C", {{"a", "int"}, {"b", "int"}});
    for (auto& [name, params, ret, body] : functions) {
      std::vector<schema::SchemaBuilder::ParamSpec> specs;
      if (!params.empty()) {
        for (const std::string& piece : common::Split(params, ';')) {
          auto parts = common::Split(piece, ':');
          specs.push_back({std::string(common::StripWhitespace(parts[0])),
                           std::string(common::StripWhitespace(parts[1]))});
        }
      }
      builder.AddFunction(name, std::move(specs), ret, body);
    }
    auto result = std::move(builder).Build();
    EXPECT_TRUE(result.ok()) << result.status();
    schema = std::move(result).value();
    db = std::make_unique<store::Database>(*schema);
    obj = db->CreateObject("C").value();
    EXPECT_TRUE(db->WriteAttribute(obj, "a", Value::Int(a_value)).ok());
    EXPECT_TRUE(db->WriteAttribute(obj, "b", Value::Int(b_value)).ok());
  }

  types::DomainMap Domains(int64_t lo, int64_t hi) const {
    types::DomainMap domains;
    domains.Set(schema->pool().Int(),
                types::Domain::IntRange(schema->pool().Int(), lo, hi));
    domains.Set(schema->pool().Bool(),
                types::Domain::Bools(schema->pool().Bool()));
    for (const auto& cls : schema->classes()) {
      domains.Set(cls->type(), types::Domain::Objects(
                                   cls->type(), db->Extent(cls->name())));
    }
    return domains;
  }

  // Runs `roots` with `args` and returns I(E) for that execution.
  std::unique_ptr<SemanticInference> Infer(
      std::vector<std::string> roots, std::vector<types::ValueSet> args,
      std::unique_ptr<unfold::UnfoldedSet>& set_out, int64_t lo = -10,
      int64_t hi = 10) {
    auto set = unfold::UnfoldedSet::Build(*schema, roots);
    EXPECT_TRUE(set.ok()) << set.status();
    set_out = std::move(set).value();
    auto execution = Execute(*set_out, *db, args);
    EXPECT_TRUE(execution.ok()) << execution.status();
    auto inference =
        SemanticInference::Build(*set_out, *execution, Domains(lo, hi));
    EXPECT_TRUE(inference.ok()) << inference.status();
    return std::move(inference).value();
  }
};

// Axiom 1: constants, own arguments and observed results are singleton
// knowledge; unobserved reads are not.
TEST(Table1Axiom1, BaseKnowledge) {
  World world({{"f", "o:C;t:int", "bool", "r_a(o) >= t + 3"}}, 5, 0);
  std::unique_ptr<unfold::UnfoldedSet> set;
  auto inference = world.Infer(
      {"f"}, {{Value::Object(world.obj), Value::Int(2)}}, set);
  // 1:o 2:r_a 3:t 4:3 5:+ 6:>=
  EXPECT_TRUE(inference->InfersTotal(3));  // own argument t
  EXPECT_TRUE(inference->InfersTotal(4));  // constant 3
  EXPECT_TRUE(inference->InfersTotal(6));  // observed result
  EXPECT_TRUE(inference->InfersTotal(5));  // derivable: t + 3 = 5
  EXPECT_FALSE(inference->InfersTotal(2));  // the hidden read
  // r_a >= 5 with result true over [-10,10] -> proper subset.
  EXPECT_TRUE(inference->InfersPartial(2));
}

// Axiom 1 (function relations) + rule 3 (join/projection): inverting a
// known-offset sum pins the read exactly.
TEST(Table1Rule3, JoinInvertsKnownOffset) {
  World world({{"g", "o:C", "int", "r_a(o) + 3"}}, 4, 0);
  std::unique_ptr<unfold::UnfoldedSet> set;
  auto inference = world.Infer({"g"}, {{Value::Object(world.obj)}}, set);
  // 1:o 2:r_a 3:3 4:+  — result 7 observed, offset known -> r_a = 4.
  EXPECT_TRUE(inference->InfersTotal(2));
  EXPECT_EQ(inference->InferredSet(2), types::ValueSet{Value::Int(4)});
}

// Axiom 2: occurrences of the same argument variable are equal, so
// knowledge about one transfers to the other.
TEST(Table1Axiom2, SameVariableOccurrences) {
  World world({{"h", "o:C", "bool", "r_a(o) == r_b(o)"}}, 2, 2);
  std::unique_ptr<unfold::UnfoldedSet> set;
  auto inference = world.Infer({"h"}, {{Value::Object(world.obj)}}, set);
  // 1:o 2:r_a 3:o 4:r_b 5:== — the two o's share a class.
  EXPECT_EQ(inference->InferredSet(1), inference->InferredSet(3));
  EXPECT_TRUE(inference->InfersTotal(1));
}

// Rule 4 with ordering: a written value equals subsequent reads...
TEST(Table1Rule4, WrittenValueEqualsSubsequentRead) {
  World world({{"g", "o:C", "int", "r_a(o) * 2"}}, 1, 0);
  std::unique_ptr<unfold::UnfoldedSet> set;
  auto inference = world.Infer(
      {"w_a", "g"},
      {{Value::Object(world.obj), Value::Int(4)}, {Value::Object(world.obj)}},
      set);
  // w_a: 1:o 2:v 3:w ; g: 4:o 5:r_a 6:2 7:*.
  EXPECT_TRUE(inference->InfersTotal(5));
  EXPECT_EQ(inference->InferredSet(5), types::ValueSet{Value::Int(4)});
}

// ...but not reads that precede the write.
TEST(Table1Rule4, WriteDoesNotReachEarlierReads) {
  World world({{"g", "o:C", "int", "r_a(o) * 0"}}, 1, 0);
  std::unique_ptr<unfold::UnfoldedSet> set;
  auto inference = world.Infer(
      {"g", "w_a"},
      {{Value::Object(world.obj)}, {Value::Object(world.obj), Value::Int(4)}},
      set);
  // g: 1:o 2:r_a 3:0 4:* ; w_a: 5:o 6:v 7:w. The read happens first;
  // the result 0 reveals nothing (times zero) and the later write must
  // not be conflated with it.
  EXPECT_FALSE(inference->InfersTotal(2));
}

// ...and an intervening write blocks the read-read equality.
TEST(Table1Rule4, InterveningWriteBlocksReadReadEquality) {
  World world({{"g", "o:C", "int", "r_a(o) * 0"}}, 1, 0);
  std::unique_ptr<unfold::UnfoldedSet> set;
  auto inference = world.Infer(
      {"g", "w_a", "g"},
      {{Value::Object(world.obj)},
       {Value::Object(world.obj), Value::Int(4)},
       {Value::Object(world.obj)}},
      set);
  // First g's read (2) and second g's read (9) straddle the write: they
  // must live in different classes — the second is pinned to 4 by the
  // write, the first stays unknown.
  EXPECT_FALSE(inference->InfersTotal(2));
  EXPECT_TRUE(inference->InfersTotal(9));
}

// Reads of the same attribute on the same object with no intervening
// write are equal, so observing one function's result constrains the
// other's read too.
TEST(Table1Rule4, ReadReadEqualityAcrossFunctions) {
  World world({{"get", "o:C", "int", "r_a(o) + 0"},
               {"test", "p:C", "bool", "r_a(p) >= 9"}},
              6, 0);
  std::unique_ptr<unfold::UnfoldedSet> set;
  auto inference = world.Infer(
      {"get", "test"},
      {{Value::Object(world.obj)}, {Value::Object(world.obj)}}, set);
  // get reveals r_a = 6 exactly; test's read (same object, no write in
  // between) shares the class.
  int test_read = 6;  // get: 1:o 2:r_a 3:0 4:+ ; test: 5:p 6:r_a ...
  ASSERT_EQ(set->node(test_read)->kind, unfold::NodeKind::kReadAttr);
  EXPECT_TRUE(inference->InfersTotal(test_read));
}

// Rule 5 / probing: two inequalities bracket the hidden value.
TEST(Table1Probing, TwoProbesPinTheValue) {
  World world({{"test", "o:C;t:int", "bool", "r_a(o) >= t"}}, 5, 0);
  std::unique_ptr<unfold::UnfoldedSet> set;
  auto inference = world.Infer(
      {"test", "test"},
      {{Value::Object(world.obj), Value::Int(5)},
       {Value::Object(world.obj), Value::Int(6)}},
      set);
  // 5 >= 5 true, 5 >= 6 false -> r_a = 5 exactly. The two reads are
  // read-read equal (no writes at all).
  EXPECT_TRUE(inference->InfersTotal(2));
  EXPECT_EQ(inference->InferredSet(2), types::ValueSet{Value::Int(5)});
}

TEST(Table1Probing, OneProbeOnlyBounds) {
  World world({{"test", "o:C;t:int", "bool", "r_a(o) >= t"}}, 5, 0);
  std::unique_ptr<unfold::UnfoldedSet> set;
  auto inference = world.Infer(
      {"test"}, {{Value::Object(world.obj), Value::Int(3)}}, set);
  EXPECT_FALSE(inference->InfersTotal(2));
  EXPECT_TRUE(inference->InfersPartial(2));  // r_a >= 3
  // The candidate set is exactly {3..10} over domain [-10,10].
  EXPECT_EQ(inference->InferredSet(2).size(), 8u);
}

// The no-knowledge baseline: a result that depends on nothing the user
// can see leaves the read unconstrained.
TEST(Table1Baseline, OpaqueResultTeachesNothing) {
  World world({{"noise", "o:C", "int", "r_a(o) * 0"}}, 5, 0);
  std::unique_ptr<unfold::UnfoldedSet> set;
  auto inference = world.Infer({"noise"}, {{Value::Object(world.obj)}}, set);
  EXPECT_FALSE(inference->InfersPartial(2));
  EXPECT_EQ(inference->InferredSet(2).size(), 21u);  // full [-10,10]
}

// Parameterized: the exactness of inversion holds across hidden values.
class InversionSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(InversionSweep, OffsetInversionIsExact) {
  World world({{"g", "o:C", "int", "r_a(o) + 3"}}, GetParam(), 0);
  std::unique_ptr<unfold::UnfoldedSet> set;
  auto inference = world.Infer({"g"}, {{Value::Object(world.obj)}}, set);
  EXPECT_EQ(inference->InferredSet(2),
            types::ValueSet{Value::Int(GetParam())});
}

INSTANTIATE_TEST_SUITE_P(HiddenValues, InversionSweep,
                         ::testing::Values(-7, -1, 0, 1, 5, 7));

}  // namespace
}  // namespace oodbsec::semantics
