// Distributed-transport tests: stream-hardened binio, the frame codec's
// robustness contract, the TCP shard transport's byte-identity triangle
// against fork and single-process CheckBatch, worker-death re-queue on
// both transports, and the networked snapshot tier.
//
// Ordering caveat inside every parity test: the fork transport runs
// FIRST, before any TCP worker thread exists — fork() wants a
// single-threaded process image (service/shard.h). gtest runs tests
// sequentially and each test joins its threads, so the image is
// single-threaded again at the next test's fork.
#include <pthread.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "core/analyzer.h"
#include "core/closure.h"
#include "core/closure_cache.h"
#include "core/requirement.h"
#include "net/frame.h"
#include "net/socket.h"
#include "schema/schema.h"
#include "schema/user.h"
#include "service/analysis_service.h"
#include "service/capability_signature.h"
#include "service/shard.h"
#include "service/tcp_shard.h"
#include "snapshot/binio.h"
#include "snapshot/packed_store.h"
#include "snapshot/remote_store.h"
#include "snapshot/snapshot.h"
#include "snapshot/snapshot_store.h"
#include "test_util.h"

namespace oodbsec {
namespace {

using core::ClosureOptions;

std::unique_ptr<schema::Schema> BrokerSchema() {
  schema::SchemaBuilder builder;
  builder.AddClass("Broker", {{"name", "string"},
                              {"salary", "int"},
                              {"budget", "int"},
                              {"profit", "int"}});
  builder.AddFunction("checkBudget", {{"broker", "Broker"}}, "bool",
                      ">=(r_budget(broker), *(10, r_salary(broker)))");
  builder.AddFunction("calcSalary", {{"budget", "int"}, {"profit", "int"}},
                      "int", "budget / 10 + profit / 2");
  builder.AddFunction(
      "updateSalary", {{"broker", "Broker"}}, "null",
      "w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))");
  auto result = std::move(builder).Build();
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

// The three-role stockbroker population (mirrors snapshot_test): three
// distinct capability signatures, so a cold audit builds 3 closures.
struct Fleet {
  std::unique_ptr<schema::Schema> schema;
  std::unique_ptr<schema::UserRegistry> users;
  std::vector<core::Requirement> sheet;
};

Fleet MakeFleet(int accounts_per_role = 3) {
  Fleet fleet;
  fleet.schema = BrokerSchema();
  fleet.users = std::make_unique<schema::UserRegistry>(*fleet.schema);
  struct Role {
    const char* name;
    std::vector<const char*> grants;
    const char* requirement;
  };
  const std::vector<Role> roles = {
      {"clerk", {"checkBudget", "w_budget"}, "(%s, r_salary(x) : ti)"},
      {"updater",
       {"updateSalary", "w_budget", "w_profit"},
       "(%s, w_salary(a, v : ta))"},
      {"auditor", {"checkBudget"}, "(%s, r_salary(x) : pi)"},
  };
  for (const Role& role : roles) {
    for (int k = 0; k < accounts_per_role; ++k) {
      std::string account = common::StrCat(role.name, k);
      EXPECT_TRUE(fleet.users->AddUser(account).ok());
      for (const char* grant : role.grants) {
        EXPECT_TRUE(fleet.users->Grant(account, grant).ok());
      }
      char text[128];
      std::snprintf(text, sizeof text, role.requirement, account.c_str());
      auto parsed = core::ParseRequirementString(text);
      EXPECT_TRUE(parsed.ok()) << parsed.status();
      fleet.sheet.push_back(std::move(parsed).value());
    }
  }
  return fleet;
}

using test_util::ScopedTempDir;

// A loopback worker fleet on threads. Each worker owns its listener and
// serves until Stop(); addresses() feeds TcpTransportOptions::workers.
class LoopbackFleet {
 public:
  explicit LoopbackFleet(const schema::Schema& schema,
                         std::vector<service::TcpWorkerOptions> workers) {
    for (size_t i = 0; i < workers.size(); ++i) {
      auto bound = net::Listener::Bind(0);
      EXPECT_TRUE(bound.ok()) << bound.status();
      if (!bound.ok()) continue;
      listeners_.push_back(std::make_unique<net::Listener>(
          std::move(bound).value()));
      addresses_.push_back(
          common::StrCat("127.0.0.1:", listeners_.back()->port()));
      net::Listener* listener = listeners_.back().get();
      service::TcpWorkerOptions options = workers[i];
      threads_.emplace_back([listener, &schema, options, this] {
        auto status =
            service::ServeShardWorker(*listener, schema, options, &stop_);
        EXPECT_TRUE(status.ok()) << status;
      });
    }
  }

  ~LoopbackFleet() { Stop(); }

  void Stop() {
    stop_.store(true);
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  const std::vector<std::string>& addresses() const { return addresses_; }

 private:
  std::vector<std::unique_ptr<net::Listener>> listeners_;
  std::vector<std::string> addresses_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
};

// ---------------------------------------------------------------------------
// Satellite 1: stream-hardened binio primitives.

TEST(BinioStreamTest, ReadFullSurvivesDribblingWriter) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::string payload;
  for (int i = 0; i < 4096; ++i) payload.push_back(static_cast<char>(i * 7));

  // The writer dribbles one byte at a time — every ReadFull iteration
  // sees a short read and must loop rather than trust one read().
  std::thread writer([fd = fds[1], &payload] {
    for (char c : payload) {
      while (::write(fd, &c, 1) != 1) {
      }
    }
    ::close(fd);
  });

  std::string got(payload.size(), '\0');
  EXPECT_TRUE(snapshot::ReadFull(fds[0], got.data(), got.size()));
  EXPECT_EQ(got, payload);

  // EOF now: a full read must fail, not spin.
  char extra = 0;
  EXPECT_FALSE(snapshot::ReadFull(fds[0], &extra, 1));
  writer.join();
  ::close(fds[0]);
}

TEST(BinioStreamTest, WriteFullSurvivesTinyPipeBuffer) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // A payload far beyond any pipe buffer: WriteFull must loop short
  // writes while the reader drains slowly.
  std::string payload(1 << 20, 'x');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 131);
  }

  std::string got;
  std::thread reader([fd = fds[0], &got] {
    got = snapshot::ReadToEof(fd);
    ::close(fd);
  });

  EXPECT_TRUE(snapshot::WriteFull(fds[1], payload));
  ::close(fds[1]);
  reader.join();
  EXPECT_EQ(got, payload);
}

TEST(BinioStreamTest, WriteFullFailsOnClosedPipeWithoutSignal) {
  // WriteFull must report a dead peer as `false`, not die on SIGPIPE
  // (the transport relies on this to turn peer death into re-queue).
  ::signal(SIGPIPE, SIG_IGN);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);
  std::string payload(1 << 16, 'y');
  EXPECT_FALSE(snapshot::WriteFull(fds[1], payload));
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// Frame codec: roundtrip plus the robustness contract.

TEST(FrameTest, RoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string payload = "batch bytes \0 with embedded nul";
  ASSERT_TRUE(
      net::WriteFrame(fds[0], net::FrameType::kBatch, payload, 1000).ok());
  ASSERT_TRUE(net::WriteFrame(fds[0], net::FrameType::kDone, "", 1000).ok());
  ::close(fds[0]);

  net::Frame frame;
  ASSERT_TRUE(net::ReadFrame(fds[1], &frame, 1000).ok());
  EXPECT_EQ(frame.type, net::FrameType::kBatch);
  EXPECT_EQ(frame.payload, payload);
  ASSERT_TRUE(net::ReadFrame(fds[1], &frame, 1000).ok());
  EXPECT_EQ(frame.type, net::FrameType::kDone);
  EXPECT_TRUE(frame.payload.empty());

  // Clean EOF between frames: the orderly-shutdown signal.
  auto eof = net::ReadFrame(fds[1], &frame, 1000);
  EXPECT_EQ(eof.code(), common::StatusCode::kNotFound);
  EXPECT_NE(eof.message().find("connection closed"), std::string::npos);
  ::close(fds[1]);
}

TEST(FrameTest, GarbagePrefixRejected) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string garbage = "HTTP/1.1 200 OK\r\n\r\nthis is not a frame";
  ASSERT_TRUE(snapshot::WriteFull(fds[0], garbage));
  ::close(fds[0]);

  net::Frame frame;
  auto status = net::ReadFrame(fds[1], &frame, 1000);
  EXPECT_EQ(status.code(), common::StatusCode::kFailedPrecondition);
  ::close(fds[1]);
}

TEST(FrameTest, TornFrameRejected) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string payload = "the reports this frame will never deliver";
  std::string header =
      net::EncodeFrameHeader(net::FrameType::kReports, payload);
  // Header plus half the payload, then the peer dies.
  ASSERT_TRUE(snapshot::WriteFull(fds[0], header));
  ASSERT_TRUE(snapshot::WriteFull(fds[0], payload.data(), payload.size() / 2));
  ::close(fds[0]);

  net::Frame frame;
  auto status = net::ReadFrame(fds[1], &frame, 1000);
  EXPECT_EQ(status.code(), common::StatusCode::kFailedPrecondition);
  ::close(fds[1]);
}

TEST(FrameTest, ChecksumMismatchRejected) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string payload = "payload whose bytes flip in flight";
  std::string header =
      net::EncodeFrameHeader(net::FrameType::kReports, payload);
  payload[5] ^= 0x40;  // corrupt after the checksum was computed
  ASSERT_TRUE(snapshot::WriteFull(fds[0], header));
  ASSERT_TRUE(snapshot::WriteFull(fds[0], payload));
  ::close(fds[0]);

  net::Frame frame;
  auto status = net::ReadFrame(fds[1], &frame, 1000);
  EXPECT_EQ(status.code(), common::StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("checksum"), std::string::npos);
  ::close(fds[1]);
}

TEST(FrameTest, OversizedLengthRejected) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string header = net::EncodeFrameHeader(net::FrameType::kBatch, "");
  uint32_t huge = net::kMaxFramePayload + 1;
  std::memcpy(header.data() + 8, &huge, sizeof huge);
  ASSERT_TRUE(snapshot::WriteFull(fds[0], header));
  ::close(fds[0]);

  net::Frame frame;
  auto status = net::ReadFrame(fds[1], &frame, 1000);
  EXPECT_EQ(status.code(), common::StatusCode::kFailedPrecondition);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// Satellite 3: the transport parity triangle. Fork, TCP, and
// single-process CheckBatch must agree byte for byte.

TEST(TcpShardTest, TransportParityTriangle) {
  Fleet fleet = MakeFleet();

  // Fork FIRST: no thread may exist yet.
  service::ShardOptions fork_options;
  fork_options.shard_count = 2;
  service::ForkTransport fork_transport(fork_options);
  auto fork_run = fork_transport.Run(*fleet.schema, *fleet.users, fleet.sheet,
                                     nullptr);
  ASSERT_TRUE(fork_run.ok()) << fork_run.status();

  service::AnalysisService single(*fleet.schema, *fleet.users);
  auto single_run = single.CheckBatch(fleet.sheet);
  ASSERT_TRUE(single_run.ok()) << single_run.status();

  std::vector<service::TcpWorkerOptions> workers(2);
  LoopbackFleet loopback(*fleet.schema, workers);
  service::TcpTransportOptions tcp_options;
  tcp_options.workers = loopback.addresses();
  tcp_options.io_timeout_ms = 10000;
  service::TcpTransport tcp_transport(tcp_options);
  EXPECT_EQ(tcp_transport.name(), "tcp");
  auto tcp_run =
      tcp_transport.Run(*fleet.schema, *fleet.users, fleet.sheet, nullptr);
  ASSERT_TRUE(tcp_run.ok()) << tcp_run.status();

  ASSERT_EQ(tcp_run.value().reports.size(), fleet.sheet.size());
  ASSERT_EQ(fork_run.value().reports.size(), fleet.sheet.size());
  for (size_t i = 0; i < fleet.sheet.size(); ++i) {
    EXPECT_EQ(tcp_run.value().reports[i].ToString(),
              single_run.value()[i].ToString())
        << "tcp vs single at " << i;
    EXPECT_EQ(tcp_run.value().reports[i].ToString(),
              fork_run.value().reports[i].ToString())
        << "tcp vs fork at " << i;
  }
  // Cold fleets on both transports: three distinct signatures, three
  // fixpoints, one check per requirement.
  EXPECT_EQ(tcp_run.value().merged_stats.checks, fleet.sheet.size());
  EXPECT_EQ(tcp_run.value().merged_stats.closures_built, 3u);
  EXPECT_EQ(fork_run.value().merged_stats.closures_built, 3u);
}

TEST(TcpShardTest, UnknownUserErrorMatchesCheckBatchAndFork) {
  Fleet fleet = MakeFleet();
  auto ghost = core::ParseRequirementString("(ghost, r_salary(x) : ti)");
  ASSERT_TRUE(ghost.ok()) << ghost.status();
  fleet.sheet.insert(fleet.sheet.begin() + 2, std::move(ghost).value());

  // Fork first (thread caveat), then the reference, then TCP.
  service::ShardOptions fork_options;
  fork_options.shard_count = 2;
  auto fork_run = RunShardedBatch(*fleet.schema, *fleet.users, fleet.sheet,
                                  fork_options, nullptr);
  ASSERT_FALSE(fork_run.ok());

  service::AnalysisService single(*fleet.schema, *fleet.users);
  auto single_run = single.CheckBatch(fleet.sheet);
  ASSERT_FALSE(single_run.ok());

  std::vector<service::TcpWorkerOptions> workers(2);
  LoopbackFleet loopback(*fleet.schema, workers);
  service::TcpTransportOptions tcp_options;
  tcp_options.workers = loopback.addresses();
  service::TcpTransport tcp_transport(tcp_options);
  auto tcp_run =
      tcp_transport.Run(*fleet.schema, *fleet.users, fleet.sheet, nullptr);
  ASSERT_FALSE(tcp_run.ok());

  EXPECT_EQ(tcp_run.status().code(), single_run.status().code());
  EXPECT_EQ(tcp_run.status().message(), single_run.status().message());
  EXPECT_EQ(fork_run.status().message(), single_run.status().message());
}

// Satellite 6's engine, pinned as a test: a worker that dies mid-audit
// has its unacknowledged batches re-queued and the merged report is
// unchanged. One requirement per batch forces a multi-batch stream; the
// dying worker is placed wherever the first requirement's signature
// routes, so it is guaranteed to receive work before it aborts.
TEST(TcpShardTest, WorkerDeathRequeuesToSurvivor) {
  Fleet fleet = MakeFleet();

  service::AnalysisService single(*fleet.schema, *fleet.users);
  auto single_run = single.CheckBatch(fleet.sheet);
  ASSERT_TRUE(single_run.ok()) << single_run.status();

  const schema::User* user = fleet.users->Find(fleet.sheet[0].user);
  ASSERT_NE(user, nullptr);
  ClosureOptions closure;
  std::string first_signature = service::SignatureFromRoots(
      core::AnalysisRoots(*fleet.schema, *user), closure);
  int dying = service::ShardOf(first_signature, 2);

  std::vector<service::TcpWorkerOptions> workers(2);
  workers[static_cast<size_t>(dying)].abort_after_batches = 1;
  LoopbackFleet loopback(*fleet.schema, workers);

  service::TcpTransportOptions tcp_options;
  tcp_options.workers = loopback.addresses();
  tcp_options.max_batch_requirements = 1;  // 9 batches across 3 signatures
  tcp_options.max_in_flight = 4;
  service::TcpTransport tcp_transport(tcp_options);
  auto tcp_run =
      tcp_transport.Run(*fleet.schema, *fleet.users, fleet.sheet, nullptr);
  ASSERT_TRUE(tcp_run.ok()) << tcp_run.status();

  ASSERT_EQ(tcp_run.value().reports.size(), fleet.sheet.size());
  for (size_t i = 0; i < fleet.sheet.size(); ++i) {
    EXPECT_EQ(tcp_run.value().reports[i].ToString(),
              single_run.value()[i].ToString())
        << "requeued report diverged at " << i;
  }
  // Stats are best-effort under worker death: the dying worker's final
  // kStats frame never arrives, so the one requirement it served before
  // aborting is missing from the merged counters. The reports above are
  // the contract; the counters only cover survivors.
  EXPECT_GE(tcp_run.value().merged_stats.checks, fleet.sheet.size() - 1);
}

TEST(TcpShardTest, AllWorkersDeadFailsAudit) {
  Fleet fleet = MakeFleet();
  std::vector<service::TcpWorkerOptions> workers(1);
  workers[0].abort_after_batches = 1;
  LoopbackFleet loopback(*fleet.schema, workers);

  service::TcpTransportOptions tcp_options;
  tcp_options.workers = loopback.addresses();
  tcp_options.max_batch_requirements = 1;
  tcp_options.dial.attempts = 1;
  service::TcpTransport tcp_transport(tcp_options);
  auto tcp_run =
      tcp_transport.Run(*fleet.schema, *fleet.users, fleet.sheet, nullptr);
  ASSERT_FALSE(tcp_run.ok());
  EXPECT_NE(tcp_run.status().message().find("worker"), std::string::npos);
}

// The networked snapshot tier end to end: run one cold audit against a
// coordinator-side store (workers save what they build over the wire),
// then a second audit with cache-less workers that must warm entirely
// from remote snapshot hits — and report identical bytes.
TEST(TcpShardTest, SnapshotWarmedFleetServesRemoteHits) {
  Fleet fleet = MakeFleet();
  ScopedTempDir tmp("oodbsec_net_test");
  ASSERT_TRUE(tmp.ok());
  const std::string& dir = tmp.path();
  auto store = snapshot::OpenDirectoryStore(dir);

  service::AnalysisService single(*fleet.schema, *fleet.users);
  auto single_run = single.CheckBatch(fleet.sheet);
  ASSERT_TRUE(single_run.ok()) << single_run.status();

  // persistent_cache off: every connection starts with an empty L1, so
  // the second run's warmth can only come from the remote store.
  std::vector<service::TcpWorkerOptions> workers(2);
  workers[0].persistent_cache = false;
  workers[1].persistent_cache = false;
  LoopbackFleet loopback(*fleet.schema, workers);

  service::TcpTransportOptions tcp_options;
  tcp_options.workers = loopback.addresses();
  tcp_options.snapshot_store = store;
  tcp_options.save_snapshots = true;
  service::TcpTransport tcp_transport(tcp_options);

  auto cold =
      tcp_transport.Run(*fleet.schema, *fleet.users, fleet.sheet, nullptr);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold.value().merged_stats.closures_built, 3u);
  EXPECT_EQ(cold.value().merged_stats.snapshot_hits, 0u);
  // The workers' saves crossed the wire into the coordinator's store.
  EXPECT_EQ(store->Stats().entries, 3u);

  auto warm =
      tcp_transport.Run(*fleet.schema, *fleet.users, fleet.sheet, nullptr);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ(warm.value().merged_stats.closures_built, 0u);
  EXPECT_EQ(warm.value().merged_stats.snapshot_hits, 3u);

  for (size_t i = 0; i < fleet.sheet.size(); ++i) {
    EXPECT_EQ(cold.value().reports[i].ToString(),
              single_run.value()[i].ToString());
    EXPECT_EQ(warm.value().reports[i].ToString(),
              single_run.value()[i].ToString());
  }
  loopback.Stop();
}

// ---------------------------------------------------------------------------
// The remote snapshot store on its own: Find/Save/Stats against a
// StoreServer fronting a directory store.

TEST(RemoteStoreTest, FindSaveStatsRoundTrip) {
  auto schema = BrokerSchema();
  ClosureOptions options;
  ScopedTempDir tmp("oodbsec_net_test");
  ASSERT_TRUE(tmp.ok());
  const std::string& dir = tmp.path();
  auto backing = snapshot::OpenDirectoryStore(dir);

  snapshot::StoreServer server;
  ASSERT_TRUE(server.Start(*schema, options, backing).ok());
  ASSERT_NE(server.port(), 0);
  auto client = snapshot::OpenRemoteStore(
      common::StrCat("127.0.0.1:", server.port()));

  schema::UserRegistry users(*schema);
  ASSERT_TRUE(users.AddUser("clerk").ok());
  ASSERT_TRUE(users.Grant("clerk", "checkBudget").ok());
  std::vector<std::string> roots =
      core::AnalysisRoots(*schema, *users.Find("clerk"));

  // Miss before anything is saved.
  auto miss = client->Find(*schema, options, roots);
  EXPECT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), common::StatusCode::kNotFound);

  core::ClosureCache builder(
      *schema, options, 64, nullptr,
      std::shared_ptr<snapshot::SnapshotStore>(nullptr));
  auto built = builder.GetOrBuild(roots);
  ASSERT_TRUE(built.ok()) << built.status();

  // Save over the wire; the bytes must land in the backing store.
  ASSERT_TRUE(client->Save(*schema, options, *built.value()).ok());
  auto direct = backing->Find(*schema, options, roots);
  ASSERT_TRUE(direct.ok()) << direct.status();

  // Find over the wire; the replayed entry must encode byte-identically
  // to the original build.
  auto remote = client->Find(*schema, options, roots);
  ASSERT_TRUE(remote.ok()) << remote.status();
  EXPECT_EQ(snapshot::EncodeSnapshot(*schema, options, *remote.value()),
            snapshot::EncodeSnapshot(*schema, options, *built.value()));

  auto stats = client->Stats();
  EXPECT_NE(stats.description.find("remote:"), std::string::npos);
  EXPECT_EQ(stats.entries, 1u);

  // Sweep stays server-side.
  EXPECT_EQ(client->Sweep(0).status().code(),
            common::StatusCode::kFailedPrecondition);

  server.Stop();
}

TEST(RemoteStoreTest, FingerprintMismatchRefusedAndCached) {
  auto schema = BrokerSchema();
  ClosureOptions options;
  ScopedTempDir tmp("oodbsec_net_test");
  ASSERT_TRUE(tmp.ok());
  const std::string& dir = tmp.path();
  auto backing = snapshot::OpenDirectoryStore(dir);

  snapshot::StoreServer server;
  ASSERT_TRUE(server.Start(*schema, options, backing).ok());

  // A client speaking for a *different* schema: the hello is refused
  // with a fingerprint diagnosis, and the refusal is cached (fails
  // fast, no reconnect storm).
  schema::SchemaBuilder drifted;
  drifted.AddClass("Broker", {{"name", "string"}, {"salary", "int"}});
  auto other = std::move(drifted).Build();
  ASSERT_TRUE(other.ok()) << other.status();

  auto client = snapshot::OpenRemoteStore(
      common::StrCat("127.0.0.1:", server.port()));
  std::vector<std::string> roots = {"checkBudget"};
  auto first = client->Find(*other.value(), options, roots);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), common::StatusCode::kFailedPrecondition);
  EXPECT_NE(first.status().message().find("fingerprint"), std::string::npos);

  auto second = client->Find(*other.value(), options, roots);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), common::StatusCode::kFailedPrecondition);

  server.Stop();
}

// ---------------------------------------------------------------------------
// Satellite 2: fork-path worker death surfaces a diagnosed error and
// leaves no orphaned side segments behind.

TEST(ForkShardTest, WorkerDeathSurfacesShardError) {
  Fleet fleet = MakeFleet();
  ScopedTempDir tmp("oodbsec_net_test");
  ASSERT_TRUE(tmp.ok());
  const std::string& dir = tmp.path();
  std::string pack = dir + "/cache.pack";
  auto store = snapshot::OpenPackedStore(pack);
  ASSERT_TRUE(store.ok()) << store.status();

  service::ShardOptions options;
  options.shard_count = 2;
  options.save_snapshots = true;
  options.snapshot_store = store.value();

  // The seam: shard 0's worker writes half its stream and exits 3 —
  // the OOM-killed-worker shape.
  ASSERT_EQ(::setenv("OODBSEC_TEST_SHARD_CRASH", "0", 1), 0);
  auto run = RunShardedBatch(*fleet.schema, *fleet.users, fleet.sheet,
                             options, nullptr);
  ASSERT_EQ(::unsetenv("OODBSEC_TEST_SHARD_CRASH"), 0);

  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.status().message().find("shard 0"), std::string::npos);
  EXPECT_NE(run.status().message().find("exited with status 3"),
            std::string::npos);

  // The coordinator still merged the surviving workers' side segments:
  // nothing named *.worker.* may be left on disk.
  int side_segments = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().find(".worker.") !=
        std::string::npos) {
      ++side_segments;
    }
  }
  EXPECT_EQ(side_segments, 0);

  // The fleet recovers: the same batch over the same store now runs
  // clean, byte-identical to single-process.
  auto retry = RunShardedBatch(*fleet.schema, *fleet.users, fleet.sheet,
                               options, nullptr);
  ASSERT_TRUE(retry.ok()) << retry.status();

  service::AnalysisService single(*fleet.schema, *fleet.users);
  auto single_run = single.CheckBatch(fleet.sheet);
  ASSERT_TRUE(single_run.ok()) << single_run.status();
  for (size_t i = 0; i < fleet.sheet.size(); ++i) {
    EXPECT_EQ(retry.value().reports[i].ToString(),
              single_run.value()[i].ToString());
  }
}

}  // namespace
}  // namespace oodbsec
