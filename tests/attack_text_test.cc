// Tests for the attack simulator and the workspace text format.
#include <gtest/gtest.h>

#include "attack/attacks.h"
#include "text/workspace.h"

namespace oodbsec {
namespace {

using types::Oid;
using types::Value;

constexpr const char* kBrokerWorkspace = R"(
# The paper's running example (SIGMOD'96, section 3.1).
class Broker {
  name: string;
  salary: int;
  budget: int;
  profit: int;
}

function checkBudget(broker: Broker): bool =
  r_budget(broker) >= 10 * r_salary(broker);

function calcSalary(budget: int, profit: int): int =
  budget / 10 + profit / 2;

function updateSalary(broker: Broker): null =
  w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)));

user clerk can checkBudget, w_budget, r_name;
user updater can updateSalary, w_budget, w_profit, r_name;

require (clerk, r_salary(x) : ti);
require (updater, w_salary(a, v : ta));

object Broker { name = "John", salary = 57, budget = 400, profit = 30 }
object Broker { name = "Mary", salary = 83, budget = 900, profit = 10 }
)";

TEST(WorkspaceTest, LoadsBrokerWorkspace) {
  auto workspace = text::LoadWorkspace(kBrokerWorkspace);
  ASSERT_TRUE(workspace.ok()) << workspace.status();
  EXPECT_NE(workspace->schema->FindClass("Broker"), nullptr);
  EXPECT_NE(workspace->schema->FindFunction("checkBudget"), nullptr);
  EXPECT_NE(workspace->users->Find("clerk"), nullptr);
  EXPECT_EQ(workspace->requirements.size(), 2u);
  EXPECT_EQ(workspace->database->Extent("Broker").size(), 2u);

  Oid john = workspace->database->Extent("Broker")[0];
  EXPECT_EQ(workspace->database->ReadAttribute(john, "salary").value(),
            Value::Int(57));
  EXPECT_EQ(workspace->database->ReadAttribute(john, "name").value(),
            Value::String("John"));
}

TEST(WorkspaceTest, CheckAllRequirementsFlagsBothFlaws) {
  auto workspace = text::LoadWorkspace(kBrokerWorkspace);
  ASSERT_TRUE(workspace.ok()) << workspace.status();
  auto reports = text::CheckAllRequirements(*workspace);
  ASSERT_TRUE(reports.ok()) << reports.status();
  ASSERT_EQ(reports->size(), 2u);
  EXPECT_FALSE((*reports)[0].satisfied);  // clerk infers salary
  EXPECT_FALSE((*reports)[1].satisfied);  // updater controls salary
}

TEST(WorkspaceTest, RejectsBadInput) {
  EXPECT_FALSE(text::LoadWorkspace("class {").ok());
  EXPECT_FALSE(text::LoadWorkspace("nonsense").ok());
  EXPECT_FALSE(text::LoadWorkspace("user u can nothing;").ok());
  EXPECT_FALSE(
      text::LoadWorkspace("require (ghost, f(x) : ti);").ok());
  EXPECT_FALSE(text::LoadWorkspace("object Missing { a = 1 }").ok());
  EXPECT_FALSE(text::LoadWorkspace(
                   "class C { a: int; }\nobject C { a = \"str\" }")
                   .ok());
  // Function bodies must type check.
  EXPECT_FALSE(text::LoadWorkspace(
                   "function f(x: int): bool = x + 1;")
                   .ok());
}

TEST(WorkspaceTest, LoadWorkspaceFileMissing) {
  EXPECT_FALSE(text::LoadWorkspaceFile("/nonexistent/path.odb").ok());
}

// X1: the paper's probing attack extracts the exact salary using only
// the clerk's capability list, in ~log2(range) queries.
TEST(AttackTest, BinarySearchExtractsSalary) {
  auto workspace = text::LoadWorkspace(kBrokerWorkspace);
  ASSERT_TRUE(workspace.ok()) << workspace.status();
  const schema::User* clerk = workspace->users->Find("clerk");
  ASSERT_NE(clerk, nullptr);

  attack::BinarySearchConfig config;
  config.class_name = "Broker";
  config.select_attr = "name";
  config.select_value = Value::String("John");
  config.write_fn = "w_budget";
  config.compare_fn = "checkBudget";
  config.factor = 10;  // checkBudget tests budget >= 10 * salary
  config.lo = 0;
  config.hi = 10 * 1000;

  auto transcript =
      attack::ExtractHiddenValue(*workspace->database, *clerk, config);
  ASSERT_TRUE(transcript.ok()) << transcript.status();
  EXPECT_EQ(transcript->inferred, Value::Int(57));  // John's exact salary
  // Binary search over 10'000 values: ~14 halving probes + 2 endpoints.
  EXPECT_LE(transcript->probes, 18);
  EXPECT_GE(transcript->probes, 10);
  EXPECT_FALSE(transcript->queries.empty());
}

TEST(AttackTest, ExtractionTargetsTheSelectedVictim) {
  auto workspace = text::LoadWorkspace(kBrokerWorkspace);
  ASSERT_TRUE(workspace.ok());
  const schema::User* clerk = workspace->users->Find("clerk");

  attack::BinarySearchConfig config;
  config.class_name = "Broker";
  config.select_attr = "name";
  config.select_value = Value::String("Mary");
  config.write_fn = "w_budget";
  config.compare_fn = "checkBudget";
  config.factor = 10;
  config.hi = 10 * 1000;

  auto transcript =
      attack::ExtractHiddenValue(*workspace->database, *clerk, config);
  ASSERT_TRUE(transcript.ok()) << transcript.status();
  EXPECT_EQ(transcript->inferred, Value::Int(83));
}

TEST(AttackTest, DeniedWithoutCapabilities) {
  auto workspace = text::LoadWorkspace(kBrokerWorkspace);
  ASSERT_TRUE(workspace.ok());
  // The updater lacks checkBudget; the probing query must be refused.
  const schema::User* updater = workspace->users->Find("updater");
  attack::BinarySearchConfig config;
  config.class_name = "Broker";
  config.write_fn = "w_budget";
  config.compare_fn = "checkBudget";
  config.hi = 100;
  auto transcript =
      attack::ExtractHiddenValue(*workspace->database, *updater, config);
  EXPECT_FALSE(transcript.ok());
  EXPECT_EQ(transcript.status().code(),
            common::StatusCode::kPermissionDenied);
}

TEST(AttackTest, OutOfRangeReported) {
  auto workspace = text::LoadWorkspace(kBrokerWorkspace);
  ASSERT_TRUE(workspace.ok());
  const schema::User* clerk = workspace->users->Find("clerk");
  attack::BinarySearchConfig config;
  config.class_name = "Broker";
  config.select_attr = "name";
  config.select_value = Value::String("John");
  config.write_fn = "w_budget";
  config.compare_fn = "checkBudget";
  config.factor = 10;
  config.hi = 100;  // salary 57 needs probes up to 570
  auto transcript =
      attack::ExtractHiddenValue(*workspace->database, *clerk, config);
  EXPECT_FALSE(transcript.ok());
  EXPECT_EQ(transcript.status().code(), common::StatusCode::kOutOfRange);
}

// X2: the forging attack writes a chosen salary through the audited
// updateSalary path by controlling its inputs.
TEST(AttackTest, ForgeWritesChosenSalary) {
  auto workspace = text::LoadWorkspace(kBrokerWorkspace);
  ASSERT_TRUE(workspace.ok());
  const schema::User* updater = workspace->users->Find("updater");
  ASSERT_NE(updater, nullptr);

  // Target salary 999: calcSalary(budget, profit) = budget/10 + profit/2,
  // so profit = 0 and budget = 9990 yields exactly 999.
  attack::ForgeConfig config;
  config.class_name = "Broker";
  config.select_attr = "name";
  config.select_value = Value::String("John");
  config.setup_writes = {{"w_profit", Value::Int(0)},
                         {"w_budget", Value::Int(9990)}};
  config.trigger_fn = "updateSalary";

  auto transcript =
      attack::ForgeWrittenValue(*workspace->database, *updater, config);
  ASSERT_TRUE(transcript.ok()) << transcript.status();

  Oid john = workspace->database->Extent("Broker")[0];
  EXPECT_EQ(workspace->database->ReadAttribute(john, "salary").value(),
            Value::Int(999));
}

}  // namespace
}  // namespace oodbsec
