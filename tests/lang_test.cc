#include <gtest/gtest.h>

#include "common/diagnostics.h"
#include "lang/ast.h"
#include "lang/lexer.h"
#include "lang/parser.h"
#include "lang/printer.h"

namespace oodbsec::lang {
namespace {

std::vector<TokenKind> KindsOf(std::string_view source) {
  std::vector<TokenKind> kinds;
  for (const Token& token : Lexer::TokenizeAll(source)) {
    kinds.push_back(token.kind);
  }
  return kinds;
}

TEST(LexerTest, EmptyInput) {
  EXPECT_EQ(KindsOf(""), (std::vector<TokenKind>{TokenKind::kEnd}));
  EXPECT_EQ(KindsOf("   \n\t "), (std::vector<TokenKind>{TokenKind::kEnd}));
}

TEST(LexerTest, IdentifiersAndKeywords) {
  EXPECT_EQ(KindsOf("foo let letx _x x9"),
            (std::vector<TokenKind>{TokenKind::kIdentifier, TokenKind::kKwLet,
                                    TokenKind::kIdentifier,
                                    TokenKind::kIdentifier,
                                    TokenKind::kIdentifier, TokenKind::kEnd}));
}

TEST(LexerTest, IntLiterals) {
  auto tokens = Lexer::TokenizeAll("0 42 12345");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 12345);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = Lexer::TokenizeAll(R"("hi" "a\"b" "x\\y" "n\nl")");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "hi");
  EXPECT_EQ(tokens[1].text, "a\"b");
  EXPECT_EQ(tokens[2].text, "x\\y");
  EXPECT_EQ(tokens[3].text, "n\nl");
}

TEST(LexerTest, UnterminatedStringIsError) {
  auto tokens = Lexer::TokenizeAll("\"oops");
  EXPECT_EQ(tokens[0].kind, TokenKind::kError);
}

TEST(LexerTest, OperatorsAndPunctuation) {
  EXPECT_EQ(
      KindsOf("( ) { } , : ; = == != < <= > >= + - * / %"),
      (std::vector<TokenKind>{
          TokenKind::kLParen, TokenKind::kRParen, TokenKind::kLBrace,
          TokenKind::kRBrace, TokenKind::kComma, TokenKind::kColon,
          TokenKind::kSemicolon, TokenKind::kAssign, TokenKind::kEqEq,
          TokenKind::kNotEq, TokenKind::kLess, TokenKind::kLessEq,
          TokenKind::kGreater, TokenKind::kGreaterEq, TokenKind::kPlus,
          TokenKind::kMinus, TokenKind::kStar, TokenKind::kSlash,
          TokenKind::kPercent, TokenKind::kEnd}));
}

TEST(LexerTest, CommentsAreSkipped) {
  EXPECT_EQ(KindsOf("a # comment\n b // another\n c"),
            (std::vector<TokenKind>{TokenKind::kIdentifier,
                                    TokenKind::kIdentifier,
                                    TokenKind::kIdentifier, TokenKind::kEnd}));
}

TEST(LexerTest, TracksLineAndColumn) {
  auto tokens = Lexer::TokenizeAll("a\n  bb");
  EXPECT_EQ(tokens[0].location.line, 1);
  EXPECT_EQ(tokens[0].location.column, 1);
  EXPECT_EQ(tokens[1].location.line, 2);
  EXPECT_EQ(tokens[1].location.column, 3);
}

std::string Reparse(std::string_view source,
                    PrintStyle style = PrintStyle::kInfix) {
  auto result = ParseExpressionString(source);
  if (!result.ok()) return "<error: " + result.status().ToString() + ">";
  return PrintExpr(*result.value(), style);
}

TEST(ParserTest, Literals) {
  EXPECT_EQ(Reparse("42"), "42");
  EXPECT_EQ(Reparse("true"), "true");
  EXPECT_EQ(Reparse("false"), "false");
  EXPECT_EQ(Reparse("null"), "null");
  EXPECT_EQ(Reparse("\"hi\""), "\"hi\"");
  EXPECT_EQ(Reparse("-7"), "-7");
}

TEST(ParserTest, InfixPrecedence) {
  EXPECT_EQ(Reparse("1 + 2 * 3"), "(1 + (2 * 3))");
  EXPECT_EQ(Reparse("1 * 2 + 3"), "((1 * 2) + 3)");
  EXPECT_EQ(Reparse("(1 + 2) * 3"), "((1 + 2) * 3)");
  EXPECT_EQ(Reparse("1 - 2 - 3"), "((1 - 2) - 3)");
  EXPECT_EQ(Reparse("a >= b + 1"), "(a >= (b + 1))");
  EXPECT_EQ(Reparse("p and q or r"), "((p and q) or r)");
  EXPECT_EQ(Reparse("not p and q"), "((not p) and q)");
  EXPECT_EQ(Reparse("a == b and c != d"), "((a == b) and (c != d))");
}

TEST(ParserTest, PaperPrefixSyntax) {
  // The paper's own examples parse in their original form.
  EXPECT_EQ(Reparse(">=(r_budget(broker), *(10, r_salary(broker)))"),
            "(r_budget(broker) >= (10 * r_salary(broker)))");
  EXPECT_EQ(Reparse("+(x, r_age(o))"), "(x + r_age(o))");
  EXPECT_EQ(Reparse("not(p)"), "(not p)");
}

TEST(ParserTest, PrefixPrintStyleMatchesPaper) {
  EXPECT_EQ(Reparse("r_budget(b) >= 10 * r_salary(b)", PrintStyle::kPrefix),
            ">=(r_budget(b), *(10, r_salary(b)))");
}

TEST(ParserTest, Calls) {
  EXPECT_EQ(Reparse("f()"), "f()");
  EXPECT_EQ(Reparse("f(1, g(x), \"s\")"), "f(1, g(x), \"s\")");
  EXPECT_EQ(Reparse("w_salary(broker, calcSalary(r_budget(broker)))"),
            "w_salary(broker, calcSalary(r_budget(broker)))");
}

TEST(ParserTest, Let) {
  EXPECT_EQ(Reparse("let x = 1 in x + 2 end"), "let x = 1 in (x + 2) end");
  EXPECT_EQ(Reparse("let x = 1, y = x in y end"), "let x = 1, y = x in y end");
  EXPECT_EQ(Reparse("let x = let y = 2 in y end in x end"),
            "let x = let y = 2 in y end in x end");
}

TEST(ParserTest, UnaryMinus) {
  EXPECT_EQ(Reparse("-x"), "neg(x)");
  EXPECT_EQ(Reparse("1 - -2"), "(1 - -2)");
  EXPECT_EQ(Reparse("-x * 3"), "(neg(x) * 3)");
}

TEST(ParserTest, ChainedComparisonIsError) {
  auto result = ParseExpressionString("a < b < c");
  EXPECT_FALSE(result.ok());
}

TEST(ParserTest, ReportsErrors) {
  EXPECT_FALSE(ParseExpressionString("").ok());
  EXPECT_FALSE(ParseExpressionString("1 +").ok());
  EXPECT_FALSE(ParseExpressionString("f(1,").ok());
  EXPECT_FALSE(ParseExpressionString("(1").ok());
  EXPECT_FALSE(ParseExpressionString("let x 1 in x end").ok());
  EXPECT_FALSE(ParseExpressionString("let x = 1 in x").ok());
  EXPECT_FALSE(ParseExpressionString("1 2").ok());  // trailing input
}

TEST(AstTest, CloneIsDeepAndPreservesResolution) {
  auto parsed = ParseExpressionString("let x = 1 in f(x) + 2 end");
  ASSERT_TRUE(parsed.ok());
  std::unique_ptr<Expr> original = std::move(parsed).value();
  std::unique_ptr<Expr> clone = original->Clone();
  EXPECT_EQ(PrintExpr(*original), PrintExpr(*clone));
  // Mutating the clone must not affect the original.
  clone->AsLet().mutable_body().AsCall().set_target(CallTarget::kBasic);
  EXPECT_EQ(original->AsLet().body().AsCall().target(),
            CallTarget::kUnresolved);
}

TEST(AstTest, MakersProduceExpectedKinds) {
  EXPECT_EQ(MakeInt(1)->kind(), ExprKind::kConstant);
  EXPECT_EQ(MakeVar("v")->kind(), ExprKind::kVarRef);
  std::vector<std::unique_ptr<Expr>> args;
  args.push_back(MakeInt(1));
  EXPECT_EQ(MakeCall("f", std::move(args))->kind(), ExprKind::kCall);
}

}  // namespace
}  // namespace oodbsec::lang
