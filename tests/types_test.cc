#include <gtest/gtest.h>

#include "types/domain.h"
#include "types/type.h"
#include "types/value.h"

namespace oodbsec::types {
namespace {

TEST(TypeTest, BasicTypesAreInterned) {
  TypePool pool;
  EXPECT_EQ(pool.Int(), pool.Int());
  EXPECT_EQ(pool.Bool(), pool.Bool());
  EXPECT_EQ(pool.String(), pool.String());
  EXPECT_EQ(pool.Null(), pool.Null());
  EXPECT_NE(pool.Int(), pool.Bool());
}

TEST(TypeTest, ClassTypesInternByName) {
  TypePool pool;
  const Type* broker = pool.Class("Broker");
  EXPECT_EQ(broker, pool.Class("Broker"));
  EXPECT_NE(broker, pool.Class("Person"));
  EXPECT_TRUE(broker->is_class());
  EXPECT_EQ(broker->class_name(), "Broker");
}

TEST(TypeTest, SetTypesInternByElement) {
  TypePool pool;
  const Type* ints = pool.Set(pool.Int());
  EXPECT_EQ(ints, pool.Set(pool.Int()));
  EXPECT_NE(ints, pool.Set(pool.Bool()));
  EXPECT_TRUE(ints->is_set());
  EXPECT_EQ(ints->element(), pool.Int());
}

TEST(TypeTest, ToString) {
  TypePool pool;
  EXPECT_EQ(pool.Int()->ToString(), "int");
  EXPECT_EQ(pool.Class("Person")->ToString(), "Person");
  EXPECT_EQ(pool.Set(pool.Class("Person"))->ToString(), "{Person}");
  EXPECT_EQ(pool.Set(pool.Set(pool.Int()))->ToString(), "{{int}}");
}

TEST(TypeTest, ParseRoundTrips) {
  TypePool pool;
  EXPECT_EQ(pool.Parse("int"), pool.Int());
  EXPECT_EQ(pool.Parse("bool"), pool.Bool());
  EXPECT_EQ(pool.Parse("string"), pool.String());
  EXPECT_EQ(pool.Parse("null"), pool.Null());
  EXPECT_EQ(pool.Parse("Broker"), pool.Class("Broker"));
  EXPECT_EQ(pool.Parse("{Broker}"), pool.Set(pool.Class("Broker")));
  EXPECT_EQ(pool.Parse(" { int } "), pool.Set(pool.Int()));
  EXPECT_EQ(pool.Parse(""), nullptr);
  EXPECT_EQ(pool.Parse("{int"), nullptr);
}

TEST(TypeTest, BasicPredicate) {
  TypePool pool;
  EXPECT_TRUE(pool.Int()->is_basic());
  EXPECT_TRUE(pool.Null()->is_basic());
  EXPECT_FALSE(pool.Class("C")->is_basic());
  EXPECT_FALSE(pool.Set(pool.Int())->is_basic());
}

TEST(ValueTest, NullDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v, Value::Null());
  EXPECT_EQ(v.ToString(), "null");
}

TEST(ValueTest, Scalars) {
  EXPECT_EQ(Value::Int(7).int_value(), 7);
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::String("hi").ToString(), "\"hi\"");
}

TEST(ValueTest, EqualityIsTypeAware) {
  EXPECT_NE(Value::Int(0), Value::Bool(false));
  EXPECT_NE(Value::Int(1), Value::String("1"));
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_NE(Value::Int(3), Value::Int(4));
}

TEST(ValueTest, ObjectsCompareByIdentity) {
  Value a = Value::Object(Oid(1));
  Value b = Value::Object(Oid(2));
  EXPECT_EQ(a, Value::Object(Oid(1)));
  EXPECT_NE(a, b);
  // Opaque printable form, per the paper's chosen OID variant.
  EXPECT_EQ(a.ToString(), "(a object)");
}

TEST(ValueTest, SetsAreCanonicalized) {
  Value s1 = Value::Set({Value::Int(2), Value::Int(1), Value::Int(2)});
  Value s2 = Value::Set({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.set_value().size(), 2u);
  EXPECT_EQ(s1.ToString(), "{1, 2}");
}

TEST(ValueTest, OrderingIsTotal) {
  std::vector<Value> values = {
      Value::Null(),         Value::Int(-1),         Value::Int(5),
      Value::Bool(false),    Value::Bool(true),      Value::String("a"),
      Value::Object(Oid(1)), Value::Set({Value::Int(1)}),
  };
  for (const Value& a : values) {
    EXPECT_FALSE(a < a);
    for (const Value& b : values) {
      if (a == b) continue;
      EXPECT_NE(a < b, b < a) << a.ToString() << " vs " << b.ToString();
    }
  }
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Int(3).Hash());
  EXPECT_EQ(Value::Set({Value::Int(1), Value::Int(2)}).Hash(),
            Value::Set({Value::Int(2), Value::Int(1)}).Hash());
}

TEST(DomainTest, IntRange) {
  TypePool pool;
  Domain d = Domain::IntRange(pool.Int(), -2, 2);
  EXPECT_EQ(d.size(), 5u);
  EXPECT_TRUE(d.Contains(Value::Int(0)));
  EXPECT_TRUE(d.Contains(Value::Int(-2)));
  EXPECT_FALSE(d.Contains(Value::Int(3)));
  EXPECT_FALSE(d.Contains(Value::Bool(true)));
}

TEST(DomainTest, BoolsAndStringsAndNull) {
  TypePool pool;
  EXPECT_EQ(Domain::Bools(pool.Bool()).size(), 2u);
  Domain strings = Domain::Strings(pool.String(), {"a", "b", "a"});
  EXPECT_EQ(strings.size(), 2u);
  EXPECT_EQ(Domain::NullOnly(pool.Null()).size(), 1u);
}

TEST(DomainTest, Objects) {
  TypePool pool;
  Domain d = Domain::Objects(pool.Class("C"), {Oid(1), Oid(2)});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_TRUE(d.Contains(Value::Object(Oid(2))));
}

TEST(DomainMapTest, SetAndFind) {
  TypePool pool;
  DomainMap map;
  EXPECT_EQ(map.Find(pool.Int()), nullptr);
  map.Set(pool.Int(), Domain::IntRange(pool.Int(), 0, 3));
  ASSERT_NE(map.Find(pool.Int()), nullptr);
  EXPECT_EQ(map.Find(pool.Int())->size(), 4u);
}

TEST(ProductIteratorTest, EnumeratesFullProduct) {
  TypePool pool;
  Domain ints = Domain::IntRange(pool.Int(), 0, 1);
  Domain bools = Domain::Bools(pool.Bool());
  ProductIterator it({&ints, &bools});
  EXPECT_EQ(it.TotalCount(), 4u);
  int count = 0;
  while (it.has_value()) {
    EXPECT_EQ(it.assignment().size(), 2u);
    ++count;
    it.Next();
  }
  EXPECT_EQ(count, 4);
}

TEST(ProductIteratorTest, EmptyDomainListYieldsOneAssignment) {
  ProductIterator it({});
  EXPECT_TRUE(it.has_value());
  EXPECT_TRUE(it.assignment().empty());
  it.Next();
  EXPECT_FALSE(it.has_value());
}

TEST(ProductIteratorTest, EmptyDomainYieldsNone) {
  TypePool pool;
  Domain empty(pool.Int(), {});
  Domain bools = Domain::Bools(pool.Bool());
  ProductIterator it({&bools, &empty});
  EXPECT_FALSE(it.has_value());
  EXPECT_EQ(it.TotalCount(), 0u);
}

}  // namespace
}  // namespace oodbsec::types
