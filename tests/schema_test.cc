#include <gtest/gtest.h>

#include "lang/printer.h"
#include "schema/schema.h"
#include "schema/user.h"

namespace oodbsec::schema {
namespace {

// The paper's running example (§3.1).
SchemaBuilder BrokerBuilder() {
  SchemaBuilder builder;
  builder.AddClass("Broker", {{"name", "string"},
                              {"salary", "int"},
                              {"budget", "int"},
                              {"profit", "int"}});
  builder.AddFunction(
      "checkBudget", {{"broker", "Broker"}}, "bool",
      ">=(r_budget(broker), *(10, r_salary(broker)))");
  builder.AddFunction("calcSalary", {{"budget", "int"}, {"profit", "int"}},
                      "int", "budget / 10 + profit / 2");
  builder.AddFunction(
      "updateSalary", {{"broker", "Broker"}}, "null",
      "w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))");
  return builder;
}

TEST(SchemaBuilderTest, BuildsBrokerSchema) {
  auto result = BrokerBuilder().Build();
  ASSERT_TRUE(result.ok()) << result.status();
  const Schema& schema = *result.value();

  const ClassDef* broker = schema.FindClass("Broker");
  ASSERT_NE(broker, nullptr);
  EXPECT_EQ(broker->attributes().size(), 4u);
  EXPECT_EQ(broker->AttributeIndex("salary"), 1);
  EXPECT_EQ(broker->FindAttribute("salary")->type, schema.pool().Int());
  EXPECT_EQ(broker->AttributeIndex("missing"), -1);

  const FunctionDecl* check = schema.FindFunction("checkBudget");
  ASSERT_NE(check, nullptr);
  EXPECT_EQ(check->SignatureToString(), "checkBudget(broker : Broker) : bool");
  EXPECT_NE(check->return_type(), nullptr);
}

TEST(SchemaBuilderTest, TypeChecksBodies) {
  // The checkBudget body is annotated and resolved after Build().
  auto result = BrokerBuilder().Build();
  ASSERT_TRUE(result.ok());
  const FunctionDecl* check = result.value()->FindFunction("checkBudget");
  const lang::CallExpr& body = check->body().AsCall();
  EXPECT_EQ(body.target(), lang::CallTarget::kBasic);
  ASSERT_NE(body.basic(), nullptr);
  EXPECT_EQ(body.basic()->name(), ">=");
  const lang::CallExpr& read = body.args()[0]->AsCall();
  EXPECT_EQ(read.target(), lang::CallTarget::kReadAttr);
  EXPECT_EQ(read.attribute(), "budget");
}

TEST(SchemaBuilderTest, ResolvesSpecialFunctions) {
  auto result = BrokerBuilder().Build();
  ASSERT_TRUE(result.ok());
  const Schema& schema = *result.value();

  Callable read = schema.ResolveCallable("r_salary");
  EXPECT_EQ(read.kind, Callable::Kind::kReadAttr);
  ASSERT_EQ(read.param_types.size(), 1u);
  EXPECT_EQ(read.param_types[0], schema.FindClass("Broker")->type());
  EXPECT_EQ(read.return_type, schema.pool().Int());

  Callable write = schema.ResolveCallable("w_salary");
  EXPECT_EQ(write.kind, Callable::Kind::kWriteAttr);
  ASSERT_EQ(write.param_types.size(), 2u);
  EXPECT_EQ(write.param_types[1], schema.pool().Int());
  EXPECT_EQ(write.return_type, schema.pool().Null());

  EXPECT_FALSE(schema.ResolveCallable("r_nothing").ok());
  EXPECT_FALSE(schema.ResolveCallable("unknown").ok());
  EXPECT_TRUE(schema.ResolveCallable("checkBudget").ok());
}

TEST(SchemaBuilderTest, RejectsDuplicateClass) {
  SchemaBuilder builder;
  builder.AddClass("C", {{"a", "int"}});
  builder.AddClass("C", {{"b", "int"}});
  EXPECT_FALSE(std::move(builder).Build().ok());
}

TEST(SchemaBuilderTest, RejectsDuplicateAttributeAcrossClasses) {
  // Attribute names are schema-unique so r_<att> resolves (see schema.h).
  SchemaBuilder builder;
  builder.AddClass("A", {{"x", "int"}});
  builder.AddClass("B", {{"x", "int"}});
  auto result = std::move(builder).Build();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kAlreadyExists);
}

TEST(SchemaBuilderTest, RejectsUnknownAttributeType) {
  SchemaBuilder builder;
  builder.AddClass("A", {{"x", "Missing"}});
  EXPECT_FALSE(std::move(builder).Build().ok());
}

TEST(SchemaBuilderTest, RejectsUnknownParamClass) {
  SchemaBuilder builder;
  builder.AddFunction("f", {{"x", "Nowhere"}}, "int", "1");
  EXPECT_FALSE(std::move(builder).Build().ok());
}

TEST(SchemaBuilderTest, RejectsBodyTypeMismatch) {
  SchemaBuilder builder;
  builder.AddFunction("f", {{"x", "int"}}, "bool", "x + 1");
  auto result = std::move(builder).Build();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kTypeError);
}

TEST(SchemaBuilderTest, RejectsUnboundVariable) {
  SchemaBuilder builder;
  builder.AddFunction("f", {{"x", "int"}}, "int", "x + y");
  EXPECT_FALSE(std::move(builder).Build().ok());
}

TEST(SchemaBuilderTest, RejectsRecursion) {
  SchemaBuilder builder;
  builder.AddFunction("f", {{"x", "int"}}, "int", "g(x)");
  builder.AddFunction("g", {{"x", "int"}}, "int", "f(x)");
  auto result = std::move(builder).Build();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kFailedPrecondition);
}

TEST(SchemaBuilderTest, RejectsSelfRecursion) {
  SchemaBuilder builder;
  builder.AddFunction("f", {{"x", "int"}}, "int", "f(x)");
  EXPECT_FALSE(std::move(builder).Build().ok());
}

TEST(SchemaBuilderTest, AllowsForwardCalls) {
  SchemaBuilder builder;
  builder.AddFunction("f", {{"x", "int"}}, "int", "g(x) + 1");
  builder.AddFunction("g", {{"x", "int"}}, "int", "x * 2");
  EXPECT_TRUE(std::move(builder).Build().ok());
}

TEST(SchemaBuilderTest, RejectsSpecialNameCollision) {
  SchemaBuilder builder;
  builder.AddClass("A", {{"x", "int"}});
  builder.AddFunction("r_x", {{"o", "A"}}, "int", "1");
  auto result = std::move(builder).Build();
  EXPECT_FALSE(result.ok());
}

TEST(SchemaBuilderTest, LetBodiesTypeCheck) {
  SchemaBuilder builder;
  builder.AddClass("P", {{"age", "int"}});
  builder.AddFunction("f", {{"o", "P"}}, "int",
                      "let a = r_age(o), b = a * 2 in a + b end");
  auto result = std::move(builder).Build();
  ASSERT_TRUE(result.ok()) << result.status();
}

TEST(SchemaBuilderTest, NullAssignableToClassPosition) {
  SchemaBuilder builder;
  builder.AddClass("P", {{"next", "P"}});
  builder.AddFunction("clear", {{"o", "P"}}, "null", "w_next(o, null)");
  EXPECT_TRUE(std::move(builder).Build().ok());
}

TEST(SchemaBuilderTest, SetTypedAttributes) {
  SchemaBuilder builder;
  builder.AddClass("Person", {{"age", "int"}, {"child", "{Person}"}});
  auto result = std::move(builder).Build();
  ASSERT_TRUE(result.ok()) << result.status();
  const Schema& schema = *result.value();
  Callable read = schema.ResolveCallable("r_child");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.return_type->is_set());
  EXPECT_EQ(read.return_type->element(),
            schema.FindClass("Person")->type());
}

TEST(UserRegistryTest, GrantAndCheck) {
  auto schema = BrokerBuilder().Build();
  ASSERT_TRUE(schema.ok());
  UserRegistry registry(*schema.value());
  ASSERT_TRUE(registry.AddUser("clerk").ok());
  EXPECT_FALSE(registry.AddUser("clerk").ok());

  EXPECT_TRUE(registry.Grant("clerk", "checkBudget").ok());
  EXPECT_TRUE(registry.Grant("clerk", "w_budget").ok());
  EXPECT_FALSE(registry.Grant("clerk", "nonexistent").ok());
  EXPECT_FALSE(registry.Grant("ghost", "checkBudget").ok());

  const User* clerk = registry.Find("clerk");
  ASSERT_NE(clerk, nullptr);
  EXPECT_TRUE(clerk->MayInvoke("checkBudget"));
  EXPECT_TRUE(clerk->MayInvoke("w_budget"));
  EXPECT_FALSE(clerk->MayInvoke("r_salary"));
  EXPECT_EQ(registry.users().size(), 1u);
  EXPECT_EQ(registry.Find("ghost"), nullptr);
}

TEST(UserRegistryTest, RevokeRemovesCapability) {
  auto schema = BrokerBuilder().Build();
  ASSERT_TRUE(schema.ok());
  UserRegistry registry(*schema.value());
  ASSERT_TRUE(registry.AddUser("u").ok());
  ASSERT_TRUE(registry.Grant("u", "checkBudget").ok());
  User* user = const_cast<User*>(registry.Find("u"));
  user->Revoke("checkBudget");
  EXPECT_FALSE(user->MayInvoke("checkBudget"));
}

}  // namespace
}  // namespace oodbsec::schema
