// The batch analysis service: capability-signature canonicalisation,
// closure cache hit/miss accounting, batch-vs-sequential determinism,
// error ordering, and the work-stealing pool itself.
#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/analysis_session.h"
#include "core/analyzer.h"
#include "core/requirement.h"
#include "obs/metrics.h"
#include "service/analysis_service.h"
#include "service/capability_signature.h"
#include "core/thread_pool.h"
#include "text/workspace.h"

namespace oodbsec {
namespace {

// Three users over the stockbroker schema; clerk1 and clerk2 carry the
// same grants in permuted declaration order (one role, two accounts),
// updater carries a different bundle.
constexpr const char* kRoleWorkspace = R"(
class Broker { name: string; salary: int; budget: int; profit: int; }

function checkBudget(broker: Broker): bool =
  r_budget(broker) >= 10 * r_salary(broker);

function calcSalary(budget: int, profit: int): int =
  budget / 10 + profit / 2;

function updateSalary(broker: Broker): null =
  w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)));

user clerk1 can checkBudget, w_budget, r_name;
user clerk2 can r_name, w_budget, checkBudget;
user updater can updateSalary, w_budget, w_profit, r_name;

require (clerk1, r_salary(x) : ti);
require (clerk2, r_salary(x) : ti);
require (updater, w_salary(a, v : ta));
)";

text::Workspace LoadRoleWorkspace() {
  auto workspace = text::LoadWorkspace(kRoleWorkspace);
  EXPECT_TRUE(workspace.ok()) << workspace.status();
  return std::move(workspace).value();
}

core::Requirement Req(const std::string& source) {
  auto requirement = core::ParseRequirementString(source);
  EXPECT_TRUE(requirement.ok()) << requirement.status();
  return std::move(requirement).value();
}

TEST(CapabilitySignatureTest, PermutedGrantOrderSharesSignature) {
  text::Workspace workspace = LoadRoleWorkspace();
  const schema::User* clerk1 = workspace.users->Find("clerk1");
  const schema::User* clerk2 = workspace.users->Find("clerk2");
  const schema::User* updater = workspace.users->Find("updater");
  ASSERT_NE(clerk1, nullptr);
  ASSERT_NE(clerk2, nullptr);
  ASSERT_NE(updater, nullptr);

  core::ClosureOptions options;
  EXPECT_EQ(service::CapabilitySignature(*workspace.schema, *clerk1, options),
            service::CapabilitySignature(*workspace.schema, *clerk2, options));
  EXPECT_NE(service::CapabilitySignature(*workspace.schema, *clerk1, options),
            service::CapabilitySignature(*workspace.schema, *updater, options));
}

TEST(CapabilitySignatureTest, ClosureOptionsArePartOfTheKey) {
  text::Workspace workspace = LoadRoleWorkspace();
  const schema::User* clerk = workspace.users->Find("clerk1");
  ASSERT_NE(clerk, nullptr);

  core::ClosureOptions defaults;
  core::ClosureOptions weakened;
  weakened.same_type_argument_equality = false;
  EXPECT_NE(service::CapabilitySignature(*workspace.schema, *clerk, defaults),
            service::CapabilitySignature(*workspace.schema, *clerk, weakened));

  core::ClosureOptions strengthened;
  strengthened.read_object_total_alterability = true;
  EXPECT_NE(
      service::CapabilitySignature(*workspace.schema, *clerk, defaults),
      service::CapabilitySignature(*workspace.schema, *clerk, strengthened));
}

TEST(AnalysisServiceTest, PermutedUsersShareOneClosure) {
  text::Workspace workspace = LoadRoleWorkspace();
  service::ServiceOptions options;
  options.threads = 4;
  service::AnalysisService svc(*workspace.schema, *workspace.users, options);

  auto reports = svc.CheckBatch(workspace.requirements);
  ASSERT_TRUE(reports.ok()) << reports.status();
  ASSERT_EQ(reports->size(), 3u);

  // clerk1/clerk2 share a signature: two closures for three checks.
  // Nothing was in the cache when the batch started, so there are no
  // signature-level hits yet — clerk2 reusing the closure clerk1's
  // requirement triggered is a requirement-level hit only.
  service::ServiceStats cold = svc.Stats();
  EXPECT_EQ(cold.closures_built, 2u);
  EXPECT_EQ(cold.signature_hits, 0u);
  EXPECT_EQ(cold.requirement_hits, 1u);
  EXPECT_EQ(cold.checks, 3u);
  EXPECT_EQ(svc.cache_size(), 2u);

  // The same batch again is served entirely from cache: both distinct
  // signatures resolve against existing entries (one signature hit
  // each), and all three requirements reuse.
  auto again = svc.CheckBatch(workspace.requirements);
  ASSERT_TRUE(again.ok()) << again.status();
  service::ServiceStats warm = svc.Stats();
  EXPECT_EQ(warm.closures_built, 2u);
  EXPECT_EQ(warm.signature_hits, 2u);
  EXPECT_EQ(warm.requirement_hits, 4u);
  EXPECT_EQ(warm.checks, 6u);
  EXPECT_EQ(svc.cache_size(), 2u);
}

// The old single `HitRate()` divided cache hits by *checks*, silently
// conflating closure reuse with requirement traffic. The split rates
// answer the two questions separately — and each stays in [0, 1].
TEST(AnalysisServiceTest, HitRatesSeparateSignatureAndRequirementReuse) {
  text::Workspace workspace = LoadRoleWorkspace();
  service::AnalysisService svc(*workspace.schema, *workspace.users);

  // Fresh service: both rates are defined (0, not NaN).
  EXPECT_EQ(svc.Stats().SignatureHitRate(), 0.0);
  EXPECT_EQ(svc.Stats().RequirementHitRate(), 0.0);

  ASSERT_TRUE(svc.CheckBatch(workspace.requirements).ok());
  service::ServiceStats cold = svc.Stats();
  // 2 builds, 0 cached-signature resolutions; 1 of 3 requirements
  // reused a closure.
  EXPECT_DOUBLE_EQ(cold.SignatureHitRate(), 0.0);
  EXPECT_DOUBLE_EQ(cold.RequirementHitRate(), 1.0 / 3.0);

  ASSERT_TRUE(svc.CheckBatch(workspace.requirements).ok());
  service::ServiceStats warm = svc.Stats();
  // 2 builds vs 2 cached resolutions; 4 of 6 requirements reused.
  EXPECT_DOUBLE_EQ(warm.SignatureHitRate(), 0.5);
  EXPECT_DOUBLE_EQ(warm.RequirementHitRate(), 4.0 / 6.0);
  // The old formula would have reported 2 "hits" over 6 checks for the
  // signature question and had no answer at all for the requirement
  // question; both new rates are bounded.
  EXPECT_LE(warm.SignatureHitRate(), 1.0);
  EXPECT_LE(warm.RequirementHitRate(), 1.0);
}

// Single-requirement Check() accounting: the first call builds, later
// calls score one signature hit and one requirement hit each.
TEST(AnalysisServiceTest, SingleCheckAccounting) {
  text::Workspace workspace = LoadRoleWorkspace();
  service::AnalysisService svc(*workspace.schema, *workspace.users);
  core::Requirement requirement = Req("(clerk1, r_salary(x) : ti)");

  ASSERT_TRUE(svc.Check(requirement).ok());
  ASSERT_TRUE(svc.Check(requirement).ok());
  // clerk2 shares clerk1's signature, so it hits too.
  ASSERT_TRUE(svc.Check(Req("(clerk2, r_salary(x) : ti)")).ok());

  service::ServiceStats stats = svc.Stats();
  EXPECT_EQ(stats.closures_built, 1u);
  EXPECT_EQ(stats.signature_hits, 2u);
  EXPECT_EQ(stats.requirement_hits, 2u);
  EXPECT_EQ(stats.checks, 3u);
}

TEST(AnalysisServiceTest, DifferentClosureOptionsDoNotShareClosures) {
  text::Workspace workspace = LoadRoleWorkspace();

  service::ServiceOptions defaults;
  service::AnalysisService svc_default(*workspace.schema, *workspace.users,
                                       defaults);
  service::ServiceOptions weakened;
  weakened.closure.same_type_argument_equality = false;
  service::AnalysisService svc_weak(*workspace.schema, *workspace.users,
                                    weakened);

  core::Requirement requirement = Req("(clerk1, r_salary(x) : ti)");
  auto strict = svc_default.Check(requirement);
  auto weak = svc_weak.Check(requirement);
  ASSERT_TRUE(strict.ok()) << strict.status();
  ASSERT_TRUE(weak.ok()) << weak.status();
  // Each service built its own closure — the signatures differ, so a
  // shared cache would also have kept them apart.
  EXPECT_EQ(svc_default.Stats().closures_built, 1u);
  EXPECT_EQ(svc_weak.Stats().closures_built, 1u);
  // Without same-type argument equality the clerk cannot link the
  // budget write to checkBudget's argument, so the flaw disappears:
  // the options reach the fixpoint, not just the cache key.
  EXPECT_FALSE(strict->satisfied);
  EXPECT_TRUE(weak->satisfied);
}

// The determinism contract: a parallel batch over the stockbroker
// workspace is byte-identical — verdicts, flaw sites, supporting facts,
// derivation texts — to one-requirement-at-a-time CheckRequirement.
TEST(AnalysisServiceTest, BatchMatchesSequentialByteForByte) {
  text::Workspace workspace = LoadRoleWorkspace();
  service::ServiceOptions options;
  options.threads = 4;
  service::AnalysisService svc(*workspace.schema, *workspace.users, options);

  auto batch = svc.CheckBatch(workspace.requirements);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), workspace.requirements.size());

  for (size_t i = 0; i < workspace.requirements.size(); ++i) {
    auto sequential = core::CheckRequirement(
        *workspace.schema, *workspace.users, workspace.requirements[i]);
    ASSERT_TRUE(sequential.ok()) << sequential.status();
    const core::AnalysisReport& a = (*batch)[i];
    const core::AnalysisReport& b = *sequential;
    EXPECT_EQ(a.satisfied, b.satisfied) << i;
    EXPECT_EQ(a.node_count, b.node_count) << i;
    EXPECT_EQ(a.fact_count, b.fact_count) << i;
    EXPECT_EQ(a.ToString(), b.ToString()) << i;
    ASSERT_EQ(a.flaws.size(), b.flaws.size()) << i;
    for (size_t f = 0; f < a.flaws.size(); ++f) {
      EXPECT_EQ(a.flaws[f].site_id, b.flaws[f].site_id);
      EXPECT_EQ(a.flaws[f].description, b.flaws[f].description);
      EXPECT_EQ(a.flaws[f].supporting_facts, b.flaws[f].supporting_facts);
      EXPECT_EQ(a.flaws[f].derivation, b.flaws[f].derivation);
    }
  }
}

TEST(AnalysisServiceTest, BatchReportsEarliestFailureInInputOrder) {
  text::Workspace workspace = LoadRoleWorkspace();
  service::ServiceOptions options;
  options.threads = 2;
  service::AnalysisService svc(*workspace.schema, *workspace.users, options);

  // Failure after success: the batch fails with requirement 1's error.
  {
    std::vector<core::Requirement> batch = {
        Req("(clerk1, r_salary(x) : ti)"), Req("(ghost, r_salary(x) : ti)")};
    auto reports = svc.CheckBatch(batch);
    ASSERT_FALSE(reports.ok());
    EXPECT_NE(reports.status().message().find("unknown user 'ghost'"),
              std::string::npos)
        << reports.status();
  }
  // Two failures: the earlier one (unknown function, a check-time
  // error) wins over the later unknown user, exactly as a sequential
  // loop would encounter them.
  {
    std::vector<core::Requirement> batch = {
        Req("(clerk1, noSuchFunction(x) : ti)"),
        Req("(ghost, r_salary(x) : ti)")};
    auto reports = svc.CheckBatch(batch);
    ASSERT_FALSE(reports.ok());
    EXPECT_NE(reports.status().message().find("noSuchFunction"),
              std::string::npos)
        << reports.status();
  }
  // Order flipped: now the unknown user is first and wins.
  {
    std::vector<core::Requirement> batch = {
        Req("(ghost, r_salary(x) : ti)"),
        Req("(clerk1, noSuchFunction(x) : ti)")};
    auto reports = svc.CheckBatch(batch);
    ASSERT_FALSE(reports.ok());
    EXPECT_NE(reports.status().message().find("unknown user 'ghost'"),
              std::string::npos)
        << reports.status();
  }
  // An empty batch is trivially fine.
  auto empty = svc.CheckBatch({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

// Every metric outside the "pool." namespace is documented as a
// deterministic function of the workload: scheduling may move work
// between threads but never changes what is derived or counted. Run the
// same two batches through a 1-thread and an 8-thread service and the
// non-pool snapshots must be identical, entry for entry.
TEST(AnalysisServiceTest, MetricsIdenticalAcrossThreadCounts) {
  auto run = [](int threads) {
    text::Workspace workspace = LoadRoleWorkspace();
    core::SessionOptions options;
    options.threads = threads;
    core::AnalysisSession session(*workspace.schema, *workspace.users,
                                  options);
    service::AnalysisService svc(session);
    EXPECT_TRUE(svc.CheckBatch(workspace.requirements).ok());
    EXPECT_TRUE(svc.CheckBatch(workspace.requirements).ok());
    EXPECT_TRUE(svc.Check(Req("(updater, w_salary(a, v : ta))")).ok());
    std::vector<obs::MetricSnapshot> metrics = session.metrics().Snapshot();
    std::erase_if(metrics, [](const obs::MetricSnapshot& m) {
      return m.name.starts_with("pool.");
    });
    return metrics;
  };

  std::vector<obs::MetricSnapshot> one = run(1);
  std::vector<obs::MetricSnapshot> eight = run(8);
  ASSERT_EQ(one.size(), eight.size());
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i], eight[i]) << one[i].name << " vs " << eight[i].name;
  }
  // And the run counted real work: closure facts were derived.
  bool saw_facts = false;
  for (const obs::MetricSnapshot& m : one) {
    if (m.name == "closure.facts.total") saw_facts = m.value > 0;
  }
  EXPECT_TRUE(saw_facts);
}

// The session façade drives the same sequential A(R) as the free
// function, and its counters see every layer of the pipeline.
TEST(AnalysisSessionTest, CheckMatchesFreeFunctionAndCounts) {
  text::Workspace workspace = LoadRoleWorkspace();
  core::AnalysisSession session(*workspace.schema, *workspace.users);

  for (const core::Requirement& requirement : workspace.requirements) {
    auto via_session = session.Check(requirement);
    auto via_free = core::CheckRequirement(*workspace.schema,
                                           *workspace.users, requirement);
    ASSERT_TRUE(via_session.ok()) << via_session.status();
    ASSERT_TRUE(via_free.ok()) << via_free.status();
    EXPECT_EQ(via_session->ToString(), via_free->ToString());
  }

  EXPECT_EQ(session.metrics().counter("session.checks")->value(), 3u);
  // One closure per check (the session layer does not cache), each with
  // at least one fixpoint round.
  EXPECT_EQ(session.metrics().counter("closure.builds")->value(), 3u);
  EXPECT_GE(session.metrics().counter("closure.fixpoint.rounds")->value(),
            3u);
  EXPECT_EQ(session.metrics().counter("unfold.builds")->value(), 3u);
  EXPECT_EQ(session.metrics().counter("analyzer.checks")->value(), 3u);

  auto missing = session.Check(Req("(ghost, r_salary(x) : ti)"));
  EXPECT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("unknown user 'ghost'"),
            std::string::npos);
}

// Arming the session tracer yields a span tree whose phases nest under
// the per-requirement root: check-requirement -> unfold / closure, and
// closure -> seed / fixpoint (-> rounds) / compress.
TEST(AnalysisSessionTest, TracedCheckProducesNestedPhaseSpans) {
  text::Workspace workspace = LoadRoleWorkspace();
  core::SessionOptions options;
  options.tracing = true;
  core::AnalysisSession session(*workspace.schema, *workspace.users,
                                options);
  ASSERT_TRUE(session.Check(Req("(clerk1, r_salary(x) : ti)")).ok());

  std::vector<obs::SpanRecord> spans = session.tracer().Snapshot();
  auto find = [&](const std::string& name) -> const obs::SpanRecord* {
    for (const obs::SpanRecord& span : spans) {
      if (span.name == name) return &span;
    }
    return nullptr;
  };
  const obs::SpanRecord* root = find("check-requirement");
  const obs::SpanRecord* unfold = find("unfold");
  const obs::SpanRecord* closure = find("closure");
  const obs::SpanRecord* fixpoint = find("closure.fixpoint");
  const obs::SpanRecord* round = find("closure.fixpoint.round");
  const obs::SpanRecord* check = find("check");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(unfold, nullptr);
  ASSERT_NE(closure, nullptr);
  ASSERT_NE(fixpoint, nullptr);
  ASSERT_NE(round, nullptr);
  ASSERT_NE(check, nullptr);
  EXPECT_EQ(root->parent, obs::kNoSpan);
  EXPECT_EQ(unfold->parent, root->id);
  EXPECT_EQ(closure->parent, root->id);
  EXPECT_EQ(fixpoint->parent, closure->id);
  EXPECT_EQ(round->parent, fixpoint->id);
  EXPECT_EQ(check->parent, root->id);
  // Every span closed, and children start within their parent.
  for (const obs::SpanRecord& span : spans) {
    EXPECT_GE(span.duration_ns, 0) << span.name;
    if (span.parent != obs::kNoSpan) {
      EXPECT_GE(span.start_ns, spans[size_t(span.parent)].start_ns)
          << span.name;
    }
  }
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  core::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitCoversNestedSubmissions) {
  core::ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&pool, &counter] {
      counter.fetch_add(1);
      pool.Submit([&counter] { counter.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  core::ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 25; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 25 * (wave + 1));
  }
}

TEST(ThreadPoolTest, SingleThreadStillDrains) {
  core::ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace oodbsec
