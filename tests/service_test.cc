// The batch analysis service: capability-signature canonicalisation,
// closure cache hit/miss accounting, batch-vs-sequential determinism,
// error ordering, and the work-stealing pool itself.
#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/requirement.h"
#include "service/analysis_service.h"
#include "service/capability_signature.h"
#include "service/thread_pool.h"
#include "text/workspace.h"

namespace oodbsec {
namespace {

// Three users over the stockbroker schema; clerk1 and clerk2 carry the
// same grants in permuted declaration order (one role, two accounts),
// updater carries a different bundle.
constexpr const char* kRoleWorkspace = R"(
class Broker { name: string; salary: int; budget: int; profit: int; }

function checkBudget(broker: Broker): bool =
  r_budget(broker) >= 10 * r_salary(broker);

function calcSalary(budget: int, profit: int): int =
  budget / 10 + profit / 2;

function updateSalary(broker: Broker): null =
  w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)));

user clerk1 can checkBudget, w_budget, r_name;
user clerk2 can r_name, w_budget, checkBudget;
user updater can updateSalary, w_budget, w_profit, r_name;

require (clerk1, r_salary(x) : ti);
require (clerk2, r_salary(x) : ti);
require (updater, w_salary(a, v : ta));
)";

text::Workspace LoadRoleWorkspace() {
  auto workspace = text::LoadWorkspace(kRoleWorkspace);
  EXPECT_TRUE(workspace.ok()) << workspace.status();
  return std::move(workspace).value();
}

core::Requirement Req(const std::string& source) {
  auto requirement = core::ParseRequirementString(source);
  EXPECT_TRUE(requirement.ok()) << requirement.status();
  return std::move(requirement).value();
}

TEST(CapabilitySignatureTest, PermutedGrantOrderSharesSignature) {
  text::Workspace workspace = LoadRoleWorkspace();
  const schema::User* clerk1 = workspace.users->Find("clerk1");
  const schema::User* clerk2 = workspace.users->Find("clerk2");
  const schema::User* updater = workspace.users->Find("updater");
  ASSERT_NE(clerk1, nullptr);
  ASSERT_NE(clerk2, nullptr);
  ASSERT_NE(updater, nullptr);

  core::ClosureOptions options;
  EXPECT_EQ(service::CapabilitySignature(*workspace.schema, *clerk1, options),
            service::CapabilitySignature(*workspace.schema, *clerk2, options));
  EXPECT_NE(service::CapabilitySignature(*workspace.schema, *clerk1, options),
            service::CapabilitySignature(*workspace.schema, *updater, options));
}

TEST(CapabilitySignatureTest, ClosureOptionsArePartOfTheKey) {
  text::Workspace workspace = LoadRoleWorkspace();
  const schema::User* clerk = workspace.users->Find("clerk1");
  ASSERT_NE(clerk, nullptr);

  core::ClosureOptions defaults;
  core::ClosureOptions weakened;
  weakened.same_type_argument_equality = false;
  EXPECT_NE(service::CapabilitySignature(*workspace.schema, *clerk, defaults),
            service::CapabilitySignature(*workspace.schema, *clerk, weakened));

  core::ClosureOptions strengthened;
  strengthened.read_object_total_alterability = true;
  EXPECT_NE(
      service::CapabilitySignature(*workspace.schema, *clerk, defaults),
      service::CapabilitySignature(*workspace.schema, *clerk, strengthened));
}

TEST(AnalysisServiceTest, PermutedUsersShareOneClosure) {
  text::Workspace workspace = LoadRoleWorkspace();
  service::ServiceOptions options;
  options.threads = 4;
  service::AnalysisService svc(*workspace.schema, *workspace.users, options);

  auto reports = svc.CheckBatch(workspace.requirements);
  ASSERT_TRUE(reports.ok()) << reports.status();
  ASSERT_EQ(reports->size(), 3u);

  // clerk1/clerk2 share a signature: two closures for three checks.
  EXPECT_EQ(svc.stats().closures_built, 2u);
  EXPECT_EQ(svc.stats().cache_hits, 1u);
  EXPECT_EQ(svc.stats().checks, 3u);
  EXPECT_EQ(svc.cache_size(), 2u);

  // The same batch again is served entirely from cache.
  auto again = svc.CheckBatch(workspace.requirements);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(svc.stats().closures_built, 2u);
  EXPECT_EQ(svc.stats().cache_hits, 4u);
  EXPECT_EQ(svc.stats().checks, 6u);
  EXPECT_EQ(svc.cache_size(), 2u);
}

TEST(AnalysisServiceTest, DifferentClosureOptionsDoNotShareClosures) {
  text::Workspace workspace = LoadRoleWorkspace();

  service::ServiceOptions defaults;
  service::AnalysisService svc_default(*workspace.schema, *workspace.users,
                                       defaults);
  service::ServiceOptions weakened;
  weakened.closure.same_type_argument_equality = false;
  service::AnalysisService svc_weak(*workspace.schema, *workspace.users,
                                    weakened);

  core::Requirement requirement = Req("(clerk1, r_salary(x) : ti)");
  auto strict = svc_default.Check(requirement);
  auto weak = svc_weak.Check(requirement);
  ASSERT_TRUE(strict.ok()) << strict.status();
  ASSERT_TRUE(weak.ok()) << weak.status();
  // Each service built its own closure — the signatures differ, so a
  // shared cache would also have kept them apart.
  EXPECT_EQ(svc_default.stats().closures_built, 1u);
  EXPECT_EQ(svc_weak.stats().closures_built, 1u);
  // Without same-type argument equality the clerk cannot link the
  // budget write to checkBudget's argument, so the flaw disappears:
  // the options reach the fixpoint, not just the cache key.
  EXPECT_FALSE(strict->satisfied);
  EXPECT_TRUE(weak->satisfied);
}

// The determinism contract: a parallel batch over the stockbroker
// workspace is byte-identical — verdicts, flaw sites, supporting facts,
// derivation texts — to one-requirement-at-a-time CheckRequirement.
TEST(AnalysisServiceTest, BatchMatchesSequentialByteForByte) {
  text::Workspace workspace = LoadRoleWorkspace();
  service::ServiceOptions options;
  options.threads = 4;
  service::AnalysisService svc(*workspace.schema, *workspace.users, options);

  auto batch = svc.CheckBatch(workspace.requirements);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), workspace.requirements.size());

  for (size_t i = 0; i < workspace.requirements.size(); ++i) {
    auto sequential = core::CheckRequirement(
        *workspace.schema, *workspace.users, workspace.requirements[i]);
    ASSERT_TRUE(sequential.ok()) << sequential.status();
    const core::AnalysisReport& a = (*batch)[i];
    const core::AnalysisReport& b = *sequential;
    EXPECT_EQ(a.satisfied, b.satisfied) << i;
    EXPECT_EQ(a.node_count, b.node_count) << i;
    EXPECT_EQ(a.fact_count, b.fact_count) << i;
    EXPECT_EQ(a.ToString(), b.ToString()) << i;
    ASSERT_EQ(a.flaws.size(), b.flaws.size()) << i;
    for (size_t f = 0; f < a.flaws.size(); ++f) {
      EXPECT_EQ(a.flaws[f].site_id, b.flaws[f].site_id);
      EXPECT_EQ(a.flaws[f].description, b.flaws[f].description);
      EXPECT_EQ(a.flaws[f].supporting_facts, b.flaws[f].supporting_facts);
      EXPECT_EQ(a.flaws[f].derivation, b.flaws[f].derivation);
    }
  }
}

TEST(AnalysisServiceTest, BatchReportsEarliestFailureInInputOrder) {
  text::Workspace workspace = LoadRoleWorkspace();
  service::ServiceOptions options;
  options.threads = 2;
  service::AnalysisService svc(*workspace.schema, *workspace.users, options);

  // Failure after success: the batch fails with requirement 1's error.
  {
    std::vector<core::Requirement> batch = {
        Req("(clerk1, r_salary(x) : ti)"), Req("(ghost, r_salary(x) : ti)")};
    auto reports = svc.CheckBatch(batch);
    ASSERT_FALSE(reports.ok());
    EXPECT_NE(reports.status().message().find("unknown user 'ghost'"),
              std::string::npos)
        << reports.status();
  }
  // Two failures: the earlier one (unknown function, a check-time
  // error) wins over the later unknown user, exactly as a sequential
  // loop would encounter them.
  {
    std::vector<core::Requirement> batch = {
        Req("(clerk1, noSuchFunction(x) : ti)"),
        Req("(ghost, r_salary(x) : ti)")};
    auto reports = svc.CheckBatch(batch);
    ASSERT_FALSE(reports.ok());
    EXPECT_NE(reports.status().message().find("noSuchFunction"),
              std::string::npos)
        << reports.status();
  }
  // Order flipped: now the unknown user is first and wins.
  {
    std::vector<core::Requirement> batch = {
        Req("(ghost, r_salary(x) : ti)"),
        Req("(clerk1, noSuchFunction(x) : ti)")};
    auto reports = svc.CheckBatch(batch);
    ASSERT_FALSE(reports.ok());
    EXPECT_NE(reports.status().message().find("unknown user 'ghost'"),
              std::string::npos)
        << reports.status();
  }
  // An empty batch is trivially fine.
  auto empty = svc.CheckBatch({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  service::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitCoversNestedSubmissions) {
  service::ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&pool, &counter] {
      counter.fetch_add(1);
      pool.Submit([&counter] { counter.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  service::ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 25; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 25 * (wave + 1));
  }
}

TEST(ThreadPoolTest, SingleThreadStillDrains) {
  service::ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace oodbsec
