// Edge cases and failure-injection across modules: boundary inputs the
// main suites don't reach.
#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/closure.h"
#include "exec/evaluator.h"
#include "query/binder.h"
#include "query/query_evaluator.h"
#include "query/query_parser.h"
#include "schema/user.h"
#include "semantics/execution.h"
#include "text/workspace.h"
#include "unfold/unfolded.h"

namespace oodbsec {
namespace {

using types::Value;

// --- Empty and degenerate analysis inputs ---

TEST(EdgeCases, EmptyCapabilityListIsAlwaysSafe) {
  schema::SchemaBuilder builder;
  builder.AddClass("C", {{"a", "int"}});
  auto schema = std::move(builder).Build();
  ASSERT_TRUE(schema.ok());
  schema::UserRegistry users(*schema.value());
  ASSERT_TRUE(users.AddUser("nobody").ok());
  auto req = core::ParseRequirementString("(nobody, r_a(x) : pi)");
  ASSERT_TRUE(req.ok());
  auto report = core::CheckRequirement(*schema.value(), users, req.value());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->satisfied);
  EXPECT_EQ(report->node_count, 0);
}

TEST(EdgeCases, ZeroArgumentFunction) {
  schema::SchemaBuilder builder;
  builder.AddFunction("answer", {}, "int", "41 + 1");
  auto schema = std::move(builder).Build();
  ASSERT_TRUE(schema.ok()) << schema.status();

  store::Database db(*schema.value());
  exec::Evaluator evaluator(db);
  EXPECT_EQ(evaluator.CallByName("answer", {}).value(), Value::Int(42));

  auto set = unfold::UnfoldedSet::Build(*schema.value(), {"answer"});
  ASSERT_TRUE(set.ok());
  core::Closure closure(*set.value());
  // The whole body is a constant expression: observed and derivable.
  EXPECT_TRUE(closure.HasTi(set.value()->roots()[0].body->id));
  EXPECT_FALSE(closure.HasPa(set.value()->roots()[0].body->id));
}

TEST(EdgeCases, UnusedParameterIsHarmless) {
  schema::SchemaBuilder builder;
  builder.AddClass("C", {{"a", "int"}});
  builder.AddFunction("ignore", {{"o", "C"}, {"x", "int"}}, "int", "7");
  auto schema = std::move(builder).Build();
  ASSERT_TRUE(schema.ok()) << schema.status();
  schema::UserRegistry users(*schema.value());
  ASSERT_TRUE(users.AddUser("u").ok());
  ASSERT_TRUE(users.Grant("u", "ignore").ok());
  // Requirements on the unused argument hold trivially at the root site
  // (the user supplies it), so this is flagged...
  auto req = core::ParseRequirementString("(u, ignore(o, x : ta) : ti)");
  ASSERT_TRUE(req.ok());
  auto report = core::CheckRequirement(*schema.value(), users, req.value());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->satisfied);
}

TEST(EdgeCases, RequirementOnWriteResultIsSatisfiable) {
  // w_a returns null; requiring non-inference of a null result is
  // odd but legal — and violated, since null is trivially known.
  schema::SchemaBuilder builder;
  builder.AddClass("C", {{"a", "int"}});
  auto schema = std::move(builder).Build();
  ASSERT_TRUE(schema.ok());
  schema::UserRegistry users(*schema.value());
  ASSERT_TRUE(users.AddUser("u").ok());
  ASSERT_TRUE(users.Grant("u", "w_a").ok());
  auto req = core::ParseRequirementString("(u, w_a(o, v) : ti)");
  ASSERT_TRUE(req.ok());
  auto report = core::CheckRequirement(*schema.value(), users, req.value());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->satisfied);
}

// --- Language / evaluator boundaries ---

TEST(EdgeCases, DeeplyNestedExpressionsParseAndEvaluate) {
  std::string body = "x";
  for (int i = 0; i < 200; ++i) body = "(" + body + " + 1)";
  schema::SchemaBuilder builder;
  builder.AddFunction("deep", {{"x", "int"}}, "int", body);
  auto schema = std::move(builder).Build();
  ASSERT_TRUE(schema.ok()) << schema.status();
  store::Database db(*schema.value());
  exec::Evaluator evaluator(db);
  EXPECT_EQ(evaluator.CallByName("deep", {Value::Int(0)}).value(),
            Value::Int(200));
}

TEST(EdgeCases, ShadowingInNestedLets) {
  schema::SchemaBuilder builder;
  builder.AddFunction("shadow", {{"x", "int"}}, "int",
                      "let x = x + 1 in let x = x * 2 in x end end");
  auto schema = std::move(builder).Build();
  ASSERT_TRUE(schema.ok()) << schema.status();
  store::Database db(*schema.value());
  exec::Evaluator evaluator(db);
  // (3+1)*2 = 8.
  EXPECT_EQ(evaluator.CallByName("shadow", {Value::Int(3)}).value(),
            Value::Int(8));
}

TEST(EdgeCases, SequentialLetBindingsSeeEarlierOnes) {
  schema::SchemaBuilder builder;
  builder.AddFunction("seq", {{"x", "int"}}, "int",
                      "let a = x + 1, b = a * 2, c = b - a in c end");
  auto schema = std::move(builder).Build();
  ASSERT_TRUE(schema.ok()) << schema.status();
  store::Database db(*schema.value());
  exec::Evaluator evaluator(db);
  // a=4, b=8, c=4.
  EXPECT_EQ(evaluator.CallByName("seq", {Value::Int(3)}).value(),
            Value::Int(4));
}

TEST(EdgeCases, IntegerOverflowWrapsSilently) {
  // Documented behavior: int64 arithmetic, no checks (the analysis
  // layer treats domains abstractly anyway).
  schema::SchemaBuilder builder;
  builder.AddFunction("big", {{"x", "int"}}, "int", "x * x");
  auto schema = std::move(builder).Build();
  ASSERT_TRUE(schema.ok());
  store::Database db(*schema.value());
  exec::Evaluator evaluator(db);
  EXPECT_TRUE(evaluator.CallByName("big", {Value::Int(1LL << 40)}).ok());
}

// --- Query engine boundaries ---

struct QueryWorld {
  std::unique_ptr<schema::Schema> schema;
  std::unique_ptr<store::Database> db;

  QueryWorld() {
    schema::SchemaBuilder builder;
    builder.AddClass("P", {{"n", "int"}, {"kids", "{P}"}});
    auto result = std::move(builder).Build();
    EXPECT_TRUE(result.ok());
    schema = std::move(result).value();
    db = std::make_unique<store::Database>(*schema);
  }

  query::QueryResult Run(const std::string& text) {
    auto parsed = query::ParseQueryString(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_TRUE(query::BindQuery(*parsed.value(), *schema).ok());
    query::QueryEvaluator evaluator(*db, nullptr);
    auto result = evaluator.Run(*parsed.value());
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).value();
  }
};

TEST(EdgeCases, CrossProductOfBindings) {
  QueryWorld world;
  for (int i = 0; i < 3; ++i) {
    types::Oid oid = world.db->CreateObject("P").value();
    ASSERT_TRUE(world.db->WriteAttribute(oid, "n", Value::Int(i)).ok());
  }
  auto result = world.Run("select r_n(a) + r_n(b) from a in P, b in P");
  EXPECT_EQ(result.rows.size(), 9u);
}

TEST(EdgeCases, EmptySetSourceYieldsNoRows) {
  QueryWorld world;
  world.db->CreateObject("P").value();
  // kids defaults to {} — the inner binding finds nothing.
  auto result = world.Run("select r_n(k) from p in P, k in r_kids(p)");
  EXPECT_TRUE(result.rows.empty());
}

TEST(EdgeCases, NullSetSourceYieldsNoRows) {
  QueryWorld world;
  types::Oid oid = world.db->CreateObject("P").value();
  ASSERT_TRUE(world.db->WriteAttribute(oid, "kids", Value::Null()).ok());
  auto result = world.Run("select r_n(k) from p in P, k in r_kids(p)");
  EXPECT_TRUE(result.rows.empty());
}

TEST(EdgeCases, NestedSubqueryOverEmptySet) {
  QueryWorld world;
  world.db->CreateObject("P").value();
  auto result =
      world.Run("select (select r_n(k) from k in r_kids(p)) from p in P");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0], Value::Set({}));
}

TEST(EdgeCases, WhereClauseRuntimeErrorPropagates) {
  QueryWorld world;
  types::Oid a = world.db->CreateObject("P").value();
  (void)a;
  // r_n on a null object inside where: the evaluator must surface it.
  schema::SchemaBuilder builder;
  builder.AddClass("P", {{"n", "int"}, {"kids", "{P}"}, {"peer", "P"}});
  auto schema = std::move(builder).Build();
  ASSERT_TRUE(schema.ok());
  store::Database db(*schema.value());
  db.CreateObject("P").value();  // peer stays null
  auto parsed = query::ParseQueryString(
      "select 1 from p in P where r_n(r_peer(p)) >= 0");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(query::BindQuery(*parsed.value(), *schema.value()).ok());
  query::QueryEvaluator evaluator(db, nullptr);
  auto result = evaluator.Run(*parsed.value());
  EXPECT_FALSE(result.ok());
}

// --- Unfolding boundaries ---

TEST(EdgeCases, DiamondCallGraphUnfoldsBothPaths) {
  // f calls g and h, both call leaf: the unfolding duplicates leaf.
  schema::SchemaBuilder builder;
  builder.AddClass("C", {{"a", "int"}});
  builder.AddFunction("leaf", {{"o", "C"}}, "int", "r_a(o)");
  builder.AddFunction("g", {{"o", "C"}}, "int", "leaf(o) + 1");
  builder.AddFunction("h", {{"o", "C"}}, "int", "leaf(o) * 2");
  builder.AddFunction("f", {{"o", "C"}}, "int", "g(o) + h(o)");
  auto schema = std::move(builder).Build();
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto set = unfold::UnfoldedSet::Build(*schema.value(), {"f"});
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set.value()->reads("a").size(), 2u);
}

TEST(EdgeCases, ExecutionOfDuplicatedReadsIsConsistent) {
  schema::SchemaBuilder builder;
  builder.AddClass("C", {{"a", "int"}});
  builder.AddFunction("twice", {{"o", "C"}}, "int", "r_a(o) + r_a(o)");
  auto schema = std::move(builder).Build();
  ASSERT_TRUE(schema.ok());
  store::Database db(*schema.value());
  types::Oid oid = db.CreateObject("C").value();
  ASSERT_TRUE(db.WriteAttribute(oid, "a", Value::Int(21)).ok());
  auto set = unfold::UnfoldedSet::Build(*schema.value(), {"twice"});
  ASSERT_TRUE(set.ok());
  auto execution =
      semantics::Execute(*set.value(), db, {{Value::Object(oid)}});
  ASSERT_TRUE(execution.ok());
  EXPECT_EQ(execution->root_results[0], Value::Int(42));
}

// --- Text format boundaries ---

TEST(EdgeCases, WorkspaceWithOnlyComments) {
  auto workspace = text::LoadWorkspace("# nothing\n// here either\n");
  ASSERT_TRUE(workspace.ok()) << workspace.status();
  EXPECT_TRUE(workspace->schema->classes().empty());
}

TEST(EdgeCases, WorkspaceObjectWithNoFields) {
  auto workspace = text::LoadWorkspace(R"(
class C { a: int; }
object C { }
)");
  ASSERT_TRUE(workspace.ok()) << workspace.status();
  ASSERT_EQ(workspace->database->Extent("C").size(), 1u);
  types::Oid oid = workspace->database->Extent("C")[0];
  EXPECT_EQ(workspace->database->ReadAttribute(oid, "a").value(),
            Value::Int(0));
}

TEST(EdgeCases, WorkspaceNegativeObjectField) {
  auto workspace = text::LoadWorkspace(R"(
class C { a: int; }
object C { a = -5 }
)");
  ASSERT_TRUE(workspace.ok()) << workspace.status();
  types::Oid oid = workspace->database->Extent("C")[0];
  EXPECT_EQ(workspace->database->ReadAttribute(oid, "a").value(),
            Value::Int(-5));
}

TEST(EdgeCases, RequirementWithCapsOnEverything) {
  schema::SchemaBuilder builder;
  builder.AddClass("C", {{"a", "int"}});
  builder.AddFunction("get", {{"o", "C"}}, "int", "r_a(o)");
  auto schema = std::move(builder).Build();
  ASSERT_TRUE(schema.ok());
  schema::UserRegistry users(*schema.value());
  ASSERT_TRUE(users.AddUser("u").ok());
  ASSERT_TRUE(users.Grant("u", "get").ok());
  // All four caps on the argument and both inferabilities on the result:
  // the root site satisfies argument caps trivially and the body is
  // observed, so this must be flagged.
  auto req = core::ParseRequirementString(
      "(u, get(o : ti : pi : ta : pa) : ti : pi)");
  ASSERT_TRUE(req.ok());
  auto report = core::CheckRequirement(*schema.value(), users, req.value());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->satisfied);
}

}  // namespace
}  // namespace oodbsec
