// Packed snapshot store tests.
//
// The roundtrip suite pins the store contract: a closure saved into the
// pack and found through a freshly opened store (or a fresh *process* —
// this binary re-execs itself as a worker) replays byte-identical via
// the mmap'd segment, and the packed, directory, and cold paths all
// derive one fact-set digest. The recovery suite tears the segment
// (truncated tail, corrupted index) and requires every record that
// still validates to survive. The retention suite drifts the schema and
// requires one sweep to reclaim 100% of the stale generation's bytes.
// The page-cache and shard suites pin the LRU accounting and the
// fork/merge parity of the sharded audit over one shared pack.
//
// This binary has its own main: `packed_store_test --packed-worker
// <pack>` runs the stockbroker audit against a packed store and prints
// the reports, which is how the cross-process fixture spawns a
// genuinely fresh process image.
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/strings.h"
#include "core/analysis_session.h"
#include "core/analyzer.h"
#include "core/closure.h"
#include "core/closure_cache.h"
#include "core/requirement.h"
#include "schema/schema.h"
#include "schema/user.h"
#include "service/analysis_service.h"
#include "service/shard.h"
#include "snapshot/packed_store.h"
#include "snapshot/snapshot.h"
#include "snapshot/snapshot_store.h"
#include "test_util.h"
#include "unfold/unfolded.h"

namespace {

const char* g_argv0 = nullptr;

}  // namespace

namespace oodbsec {
namespace {

using core::CachedAnalysis;
using core::ClosureCache;
using core::ClosureOptions;
using snapshot::SnapshotStore;

std::unique_ptr<schema::Schema> BrokerSchema() {
  schema::SchemaBuilder builder;
  builder.AddClass("Broker", {{"name", "string"},
                              {"salary", "int"},
                              {"budget", "int"},
                              {"profit", "int"}});
  builder.AddFunction("checkBudget", {{"broker", "Broker"}}, "bool",
                      ">=(r_budget(broker), *(10, r_salary(broker)))");
  builder.AddFunction("calcSalary", {{"budget", "int"}, {"profit", "int"}},
                      "int", "budget / 10 + profit / 2");
  builder.AddFunction(
      "updateSalary", {{"broker", "Broker"}}, "null",
      "w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))");
  auto result = std::move(builder).Build();
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

// The same schema with one extra attribute — a different fingerprint,
// so records saved under BrokerSchema are a stale generation to it.
std::unique_ptr<schema::Schema> DriftedBrokerSchema() {
  schema::SchemaBuilder builder;
  builder.AddClass("Broker", {{"name", "string"},
                              {"salary", "int"},
                              {"budget", "int"},
                              {"profit", "int"},
                              {"bonus", "int"}});
  builder.AddFunction("checkBudget", {{"broker", "Broker"}}, "bool",
                      ">=(r_budget(broker), *(10, r_salary(broker)))");
  builder.AddFunction("calcSalary", {{"budget", "int"}, {"profit", "int"}},
                      "int", "budget / 10 + profit / 2");
  builder.AddFunction(
      "updateSalary", {{"broker", "Broker"}}, "null",
      "w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))");
  auto result = std::move(builder).Build();
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

using test_util::ScopedTempDir;

uint64_t FileBytes(const std::string& path) {
  std::error_code ec;
  uint64_t size = std::filesystem::file_size(path, ec);
  EXPECT_FALSE(ec) << path;
  return size;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

// Byte-identical derivation logs — the strong form of the replay
// contract (FactSetDigest equality is the weak form).
void ExpectIdenticalLogs(const core::Closure& a, const core::Closure& b) {
  ASSERT_EQ(a.steps().size(), b.steps().size());
  for (size_t i = 0; i < a.steps().size(); ++i) {
    const core::DerivationStep& sa = a.steps()[i];
    const core::DerivationStep& sb = b.steps()[i];
    EXPECT_EQ(sa.fact.kind, sb.fact.kind) << "step " << i;
    EXPECT_EQ(sa.fact.a, sb.fact.a) << "step " << i;
    EXPECT_EQ(sa.fact.b, sb.fact.b) << "step " << i;
    EXPECT_EQ(sa.fact.origin.num, sb.fact.origin.num) << "step " << i;
    EXPECT_EQ(sa.fact.origin.dir, sb.fact.origin.dir) << "step " << i;
    EXPECT_EQ(sa.rule, sb.rule) << "step " << i;
    core::FactId id = static_cast<core::FactId>(i);
    auto pa = a.premises(id);
    auto pb = b.premises(id);
    ASSERT_EQ(pa.size(), pb.size()) << "step " << i;
    for (size_t p = 0; p < pa.size(); ++p) {
      EXPECT_EQ(pa[p], pb[p]) << "step " << i << " premise " << p;
    }
  }
}

const std::vector<std::string> kFullRoots = {"checkBudget", "updateSalary"};
const std::vector<std::string> kSmallRoots = {"checkBudget"};

// Builds the closure for `roots` cold and saves it through `store`.
// Returns the built entry for comparisons.
std::shared_ptr<const CachedAnalysis> BuildAndSave(
    const schema::Schema& schema, const ClosureOptions& options,
    const std::shared_ptr<SnapshotStore>& store,
    const std::vector<std::string>& roots) {
  ClosureCache cache(schema, options, 64, nullptr, store);
  auto built = cache.GetOrBuild(roots);
  EXPECT_TRUE(built.ok()) << built.status();
  if (!built.ok()) return nullptr;
  EXPECT_TRUE(cache.SaveCacheSnapshot(*built.value()).ok());
  return built.value();
}

// The three-role stockbroker population (see examples/fleet_audit).
struct Fleet {
  std::unique_ptr<schema::Schema> schema;
  std::unique_ptr<schema::UserRegistry> users;
  std::vector<core::Requirement> sheet;
};

Fleet MakeFleet(int accounts_per_role = 3) {
  Fleet fleet;
  fleet.schema = BrokerSchema();
  fleet.users = std::make_unique<schema::UserRegistry>(*fleet.schema);
  struct Role {
    const char* name;
    std::vector<const char*> grants;
    const char* requirement;
  };
  const std::vector<Role> roles = {
      {"clerk", {"checkBudget", "w_budget"}, "(%s, r_salary(x) : ti)"},
      {"updater",
       {"updateSalary", "w_budget", "w_profit"},
       "(%s, w_salary(a, v : ta))"},
      {"auditor", {"checkBudget"}, "(%s, r_salary(x) : pi)"},
  };
  for (const Role& role : roles) {
    for (int k = 0; k < accounts_per_role; ++k) {
      std::string account = common::StrCat(role.name, k);
      EXPECT_TRUE(fleet.users->AddUser(account).ok());
      for (const char* grant : role.grants) {
        EXPECT_TRUE(fleet.users->Grant(account, grant).ok());
      }
      char text[128];
      std::snprintf(text, sizeof text, role.requirement, account.c_str());
      auto parsed = core::ParseRequirementString(text);
      EXPECT_TRUE(parsed.ok()) << parsed.status();
      fleet.sheet.push_back(std::move(parsed).value());
    }
  }
  return fleet;
}

class PackedStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(tmp_.ok());
    dir_ = tmp_.path();
    pack_ = common::StrCat(dir_, "/cache.pack");
    schema_ = BrokerSchema();
  }

  std::shared_ptr<SnapshotStore> Open(size_t page_capacity = 64) {
    auto store = snapshot::OpenPackedStore(pack_, page_capacity);
    EXPECT_TRUE(store.ok()) << store.status();
    return store.ok() ? std::move(store).value() : nullptr;
  }

  ScopedTempDir tmp_{"oodbsec_packed_test"};
  std::string dir_;
  std::string pack_;
  std::unique_ptr<schema::Schema> schema_;
  ClosureOptions options_;
};

TEST_F(PackedStoreTest, ByteIdenticalReplayAcrossReopen) {
  std::shared_ptr<const CachedAnalysis> built;
  {
    auto store = Open();
    ASSERT_NE(store, nullptr);
    built = BuildAndSave(*schema_, options_, store, kFullRoots);
    ASSERT_NE(built, nullptr);
  }  // store dropped: the "process" died

  auto reopened = Open();
  ASSERT_NE(reopened, nullptr);
  auto found = reopened->Find(*schema_, options_, kFullRoots);
  ASSERT_TRUE(found.ok()) << found.status();
  EXPECT_EQ(found.value()->roots, kFullRoots);
  EXPECT_TRUE(found.value()->closure->warm_started());
  EXPECT_EQ(found.value()->closure->FactSetDigest(),
            built->closure->FactSetDigest());
  ExpectIdenticalLogs(*built->closure, *found.value()->closure);

  // An unknown signature is a miss, not an error.
  auto missing = reopened->Find(*schema_, options_, kSmallRoots);
  EXPECT_EQ(missing.status().code(), common::StatusCode::kNotFound);

  // Bulk warm start sees the one record.
  size_t invalid = 0;
  auto all = reopened->LoadAll(*schema_, options_, 64, &invalid);
  EXPECT_EQ(all.size(), 1u);
  EXPECT_EQ(invalid, 0u);
}

TEST_F(PackedStoreTest, PackedDirectoryAndColdDigestsAgree) {
  // The acceptance triangle: the packed replay, the directory replay,
  // and a cold build of the same roots must derive one fact set.
  std::string snap_dir = common::StrCat(dir_, "/snaps");
  auto directory = snapshot::OpenDirectoryStore(snap_dir);
  auto packed = Open();
  ASSERT_NE(packed, nullptr);
  ASSERT_NE(BuildAndSave(*schema_, options_, directory, kFullRoots), nullptr);
  ASSERT_NE(BuildAndSave(*schema_, options_, packed, kFullRoots), nullptr);

  auto from_dir = directory->Find(*schema_, options_, kFullRoots);
  auto from_pack = packed->Find(*schema_, options_, kFullRoots);
  ASSERT_TRUE(from_dir.ok()) << from_dir.status();
  ASSERT_TRUE(from_pack.ok()) << from_pack.status();

  auto cold_set = unfold::UnfoldedSet::Build(*schema_, kFullRoots);
  ASSERT_TRUE(cold_set.ok());
  core::Closure cold(*cold_set.value());
  EXPECT_EQ(from_pack.value()->closure->FactSetDigest(), cold.FactSetDigest());
  EXPECT_EQ(from_pack.value()->closure->FactSetDigest(),
            from_dir.value()->closure->FactSetDigest());
  ExpectIdenticalLogs(*from_dir.value()->closure,
                      *from_pack.value()->closure);
}

TEST_F(PackedStoreTest, IdenticalResaveDoesNotGrowTheSegment) {
  auto store = Open();
  ASSERT_NE(store, nullptr);
  auto built = BuildAndSave(*schema_, options_, store, kFullRoots);
  ASSERT_NE(built, nullptr);
  uint64_t size_after_first = FileBytes(pack_);
  // Replay is deterministic, so a rebuilt entry serializes to the same
  // bytes and the live-record check must skip the append.
  ASSERT_TRUE(store->Save(*schema_, options_, *built).ok());
  EXPECT_EQ(FileBytes(pack_), size_after_first);
  EXPECT_EQ(store->Stats().entries, 1u);
}

TEST_F(PackedStoreTest, TruncatedSegmentKeepsTheValidPrefix) {
  {
    auto store = Open();
    ASSERT_NE(store, nullptr);
    ASSERT_NE(BuildAndSave(*schema_, options_, store, kFullRoots), nullptr);
    uint64_t size_one = FileBytes(pack_);
    // footer for one record: one 40-byte index entry + 32-byte trailer.
    uint64_t first_record_end = size_one - 72;
    ASSERT_NE(BuildAndSave(*schema_, options_, store, kSmallRoots), nullptr);
    ASSERT_EQ(store->Stats().entries, 2u);
    // Tear the file mid-way through the second record (and lose the
    // footer entirely): the classic kill -9 during an append.
    std::error_code ec;
    std::filesystem::resize_file(pack_, first_record_end + 20, ec);
    ASSERT_FALSE(ec);
  }

  auto recovered = Open();
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->Stats().entries, 1u);
  auto kept = recovered->Find(*schema_, options_, kFullRoots);
  EXPECT_TRUE(kept.ok()) << kept.status();
  auto lost = recovered->Find(*schema_, options_, kSmallRoots);
  EXPECT_EQ(lost.status().code(), common::StatusCode::kNotFound);
  // Open rewrote a clean footer over the torn tail, so a second open
  // takes the fast indexed path and sees the same single record.
  auto again = Open();
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->Stats().entries, 1u);
}

TEST_F(PackedStoreTest, TornIndexFallsBackToRecordScan) {
  {
    auto store = Open();
    ASSERT_NE(store, nullptr);
    ASSERT_NE(BuildAndSave(*schema_, options_, store, kFullRoots), nullptr);
    ASSERT_NE(BuildAndSave(*schema_, options_, store, kSmallRoots), nullptr);
  }
  // Corrupt one byte inside the index area (8 bytes before the trailer
  // lands in the last index entry's checksum): the trailer still parses
  // but the index checksum mismatches, forcing the record scan.
  std::string bytes = ReadFileBytes(pack_);
  ASSERT_GT(bytes.size(), 40u);
  bytes[bytes.size() - 40] ^= 0x41;
  WriteFileBytes(pack_, bytes);

  auto recovered = Open();
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->Stats().entries, 2u);
  EXPECT_TRUE(recovered->Find(*schema_, options_, kFullRoots).ok());
  EXPECT_TRUE(recovered->Find(*schema_, options_, kSmallRoots).ok());
}

TEST_F(PackedStoreTest, ForeignEndianPackIsRefused) {
  {
    auto store = Open();
    ASSERT_NE(store, nullptr);
    ASSERT_NE(BuildAndSave(*schema_, options_, store, kFullRoots), nullptr);
  }
  // Mirror the pack header's byte-order marker: unlike directory
  // snapshots (which swap-decode), the mmap replay path aliases raw
  // structs, so a foreign pack must be refused outright.
  std::string bytes = ReadFileBytes(pack_);
  std::reverse(bytes.begin() + 12, bytes.begin() + 16);
  WriteFileBytes(pack_, bytes);
  auto refused = snapshot::OpenPackedStore(pack_);
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.status().message().find("foreign-endian"),
            std::string::npos)
      << refused.status();
}

TEST_F(PackedStoreTest, SweepAfterSchemaDriftReclaimsAllStaleBytes) {
  {
    auto store = Open();
    ASSERT_NE(store, nullptr);
    ASSERT_NE(BuildAndSave(*schema_, options_, store, kFullRoots), nullptr);
    ASSERT_NE(BuildAndSave(*schema_, options_, store, kSmallRoots), nullptr);
  }

  auto drifted = DriftedBrokerSchema();
  auto store = Open();
  ASSERT_NE(store, nullptr);

  // A stale-generation record is a FailedPrecondition, not a miss.
  auto stale = store->Find(*drifted, options_, kFullRoots);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), common::StatusCode::kFailedPrecondition);
  EXPECT_NE(stale.status().message().find("stale generation"),
            std::string::npos)
      << stale.status();

  // The drifted probe stamped the live generation: both records now
  // read as stale bytes.
  snapshot::StoreStats before = store->Stats();
  EXPECT_EQ(before.entries, 2u);
  EXPECT_EQ(before.live_bytes, 0u);
  EXPECT_GT(before.stale_bytes, 0u);

  // One sweep reclaims 100% of the stale generation.
  uint64_t live_fp = snapshot::SchemaFingerprint(*drifted, options_);
  auto swept = store->Sweep(live_fp);
  ASSERT_TRUE(swept.ok()) << swept.status();
  EXPECT_EQ(swept.value().records_kept, 0u);
  EXPECT_EQ(swept.value().records_swept, 2u);
  EXPECT_GT(swept.value().bytes_reclaimed, 0u);
  EXPECT_EQ(before.file_bytes - swept.value().bytes_reclaimed,
            FileBytes(pack_));

  snapshot::StoreStats after = store->Stats();
  EXPECT_EQ(after.entries, 0u);
  EXPECT_EQ(after.stale_bytes, 0u);

  // A second sweep has nothing to do.
  auto again = store->Sweep(live_fp);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().records_swept, 0u);
  EXPECT_EQ(again.value().bytes_reclaimed, 0u);

  // The compacted pack serves the new generation normally.
  ASSERT_NE(BuildAndSave(*drifted, options_, store, kFullRoots), nullptr);
  EXPECT_TRUE(store->Find(*drifted, options_, kFullRoots).ok());
}

TEST_F(PackedStoreTest, SweepKeepsTheLiveGeneration) {
  // Distinct root lists: the index is keyed on (options, roots), so a
  // same-roots save under the new generation would supersede the old
  // record instead of coexisting with it.
  auto drifted = DriftedBrokerSchema();
  auto store = Open();
  ASSERT_NE(store, nullptr);
  ASSERT_NE(BuildAndSave(*schema_, options_, store, kFullRoots), nullptr);
  ASSERT_NE(BuildAndSave(*drifted, options_, store, kSmallRoots), nullptr);
  ASSERT_EQ(store->Stats().entries, 2u);

  auto swept = store->Sweep(snapshot::SchemaFingerprint(*drifted, options_));
  ASSERT_TRUE(swept.ok()) << swept.status();
  EXPECT_EQ(swept.value().records_kept, 1u);
  EXPECT_EQ(swept.value().records_swept, 1u);

  auto live = store->Find(*drifted, options_, kSmallRoots);
  EXPECT_TRUE(live.ok()) << live.status();
  auto gone = store->Find(*schema_, options_, kFullRoots);
  EXPECT_EQ(gone.status().code(), common::StatusCode::kNotFound);
}

TEST_F(PackedStoreTest, SameRootsResaveUnderNewGenerationSupersedes) {
  auto drifted = DriftedBrokerSchema();
  auto store = Open();
  ASSERT_NE(store, nullptr);
  ASSERT_NE(BuildAndSave(*schema_, options_, store, kFullRoots), nullptr);
  ASSERT_NE(BuildAndSave(*drifted, options_, store, kFullRoots), nullptr);
  // One index entry: the new generation's record won the key, and the
  // old record's bytes are dead until a sweep compacts them away.
  EXPECT_EQ(store->Stats().entries, 1u);
  EXPECT_GT(store->Stats().stale_bytes, 0u);
  EXPECT_TRUE(store->Find(*drifted, options_, kFullRoots).ok());

  auto swept = store->Sweep(snapshot::SchemaFingerprint(*drifted, options_));
  ASSERT_TRUE(swept.ok()) << swept.status();
  EXPECT_EQ(swept.value().records_kept, 1u);
  EXPECT_EQ(swept.value().records_swept, 0u);
  EXPECT_GT(swept.value().bytes_reclaimed, 0u);
  EXPECT_EQ(store->Stats().stale_bytes, 0u);
  EXPECT_TRUE(store->Find(*drifted, options_, kFullRoots).ok());
}

TEST_F(PackedStoreTest, PageCacheLruAccounting) {
  {
    auto seeder = Open();
    ASSERT_NE(seeder, nullptr);
    ASSERT_NE(BuildAndSave(*schema_, options_, seeder, kFullRoots), nullptr);
    ASSERT_NE(BuildAndSave(*schema_, options_, seeder, kSmallRoots), nullptr);
  }

  // Capacity 1: the second signature must evict the first.
  auto store = Open(/*page_capacity=*/1);
  ASSERT_NE(store, nullptr);
  auto first = store->Find(*schema_, options_, kFullRoots);   // decode
  auto hot = store->Find(*schema_, options_, kFullRoots);     // page hit
  auto other = store->Find(*schema_, options_, kSmallRoots);  // evicts
  auto back = store->Find(*schema_, options_, kFullRoots);    // decode again
  ASSERT_TRUE(first.ok() && hot.ok() && other.ok() && back.ok());
  // A page hit returns the identical decoded object; a re-decode after
  // eviction is a fresh replay of the same bytes.
  EXPECT_EQ(first.value().get(), hot.value().get());
  EXPECT_NE(first.value().get(), back.value().get());
  EXPECT_EQ(first.value()->closure->FactSetDigest(),
            back.value()->closure->FactSetDigest());

  snapshot::StoreStats stats = store->Stats();
  EXPECT_EQ(stats.page_cache_hits, 1u);
  EXPECT_EQ(stats.page_cache_misses, 3u);
  EXPECT_EQ(stats.page_cache_evictions, 2u);
  EXPECT_EQ(stats.finds, 4u);
}

TEST_F(PackedStoreTest, SharedStoreIsSharedThroughTheSessionOptions) {
  // The session resolves its store once; a service borrowing the
  // session must share the same object (one page cache).
  auto store = Open();
  ASSERT_NE(store, nullptr);
  Fleet fleet = MakeFleet(1);
  core::SessionOptions options;
  options.snapshot_store = store;
  core::AnalysisSession session(*fleet.schema, *fleet.users, options);
  EXPECT_EQ(session.options().snapshot_store.get(), store.get());
  EXPECT_EQ(session.recheck_cache().snapshot_store().get(), store.get());
  // The deprecated directory shim still resolves to a store.
  core::SessionOptions legacy;
  legacy.snapshot_dir = dir_;
  core::AnalysisSession old_style(*fleet.schema, *fleet.users, legacy);
  EXPECT_NE(old_style.options().snapshot_store, nullptr);
}

TEST_F(PackedStoreTest, MigrateDirectoryToPackVerifiesDigests) {
  std::string snap_dir = common::StrCat(dir_, "/snaps");
  auto directory = snapshot::OpenDirectoryStore(snap_dir);
  auto full = BuildAndSave(*schema_, options_, directory, kFullRoots);
  auto small = BuildAndSave(*schema_, options_, directory, kSmallRoots);
  ASSERT_NE(full, nullptr);
  ASSERT_NE(small, nullptr);
  // An unreadable file in the directory is skipped and counted, never
  // migrated.
  WriteFileBytes(common::StrCat(snap_dir, "/garbage.snap"),
                 "definitely not a snapshot");

  auto migrated =
      snapshot::MigrateDirectoryToPack(*schema_, options_, snap_dir, pack_);
  ASSERT_TRUE(migrated.ok()) << migrated.status();
  EXPECT_EQ(migrated.value().migrated, 2u);
  EXPECT_EQ(migrated.value().invalid, 1u);

  auto pack = Open();
  ASSERT_NE(pack, nullptr);
  EXPECT_EQ(pack->Stats().entries, 2u);
  auto from_pack = pack->Find(*schema_, options_, kFullRoots);
  ASSERT_TRUE(from_pack.ok()) << from_pack.status();
  EXPECT_EQ(from_pack.value()->closure->FactSetDigest(),
            full->closure->FactSetDigest());
  auto small_back = pack->Find(*schema_, options_, kSmallRoots);
  ASSERT_TRUE(small_back.ok()) << small_back.status();
  EXPECT_EQ(small_back.value()->closure->FactSetDigest(),
            small->closure->FactSetDigest());
}

// --- sharded audit over one shared pack ------------------------------

TEST(PackedShard, SharedPackParityAcrossRestart) {
  ScopedTempDir tmp("oodbsec_packed_test");
  ASSERT_TRUE(tmp.ok());
  const std::string& dir = tmp.path();
  std::string pack = common::StrCat(dir, "/fleet.pack");
  Fleet fleet = MakeFleet();

  service::ShardOptions options;
  options.shard_count = 4;
  options.save_snapshots = true;
  {
    auto store = snapshot::OpenPackedStore(pack);
    ASSERT_TRUE(store.ok()) << store.status();
    options.snapshot_store = store.value();
  }

  auto cold = service::RunShardedBatch(*fleet.schema, *fleet.users,
                                       fleet.sheet, options);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold->merged_stats.closures_built, 3u);
  EXPECT_EQ(cold->merged_stats.snapshot_hits, 0u);

  // Kill the fleet: drop the store and reopen the pack cold. The
  // coordinator's merge must have folded every worker's side segment
  // into the main one, and no worker side files may survive.
  options.snapshot_store.reset();
  for (const auto& dirent : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(dirent.path().string(), pack) << "stray side segment";
  }
  {
    auto store = snapshot::OpenPackedStore(pack);
    ASSERT_TRUE(store.ok()) << store.status();
    EXPECT_EQ(store.value()->Stats().entries, 3u);
    options.snapshot_store = store.value();
  }

  auto warm = service::RunShardedBatch(*fleet.schema, *fleet.users,
                                       fleet.sheet, options);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ(warm->merged_stats.closures_built, 0u);
  EXPECT_EQ(warm->merged_stats.snapshot_hits, 3u);
  ASSERT_EQ(cold->reports.size(), warm->reports.size());
  for (size_t i = 0; i < cold->reports.size(); ++i) {
    EXPECT_EQ(cold->reports[i].ToString(), warm->reports[i].ToString());
  }
}

// --- the cross-process fixture (ctest: packed_roundtrip) -------------

TEST(PackedShard, FreshProcessReplaysFromThePack) {
  ASSERT_NE(g_argv0, nullptr);
  ScopedTempDir tmp("oodbsec_packed_test");
  ASSERT_TRUE(tmp.ok());
  const std::string& dir = tmp.path();
  std::string pack = common::StrCat(dir, "/fleet.pack");
  Fleet fleet = MakeFleet();

  // In-process pass: run the audit cold, persist every closure into the
  // pack, and render the expected report text.
  std::string expected;
  {
    auto store = snapshot::OpenPackedStore(pack);
    ASSERT_TRUE(store.ok()) << store.status();
    service::ServiceOptions options;
    options.threads = 2;
    options.snapshot_store = store.value();
    service::AnalysisService svc(*fleet.schema, *fleet.users, options);
    auto reports = svc.CheckBatch(fleet.sheet);
    ASSERT_TRUE(reports.ok()) << reports.status();
    ASSERT_TRUE(svc.SaveCacheSnapshot().ok());
    for (const core::AnalysisReport& report : reports.value()) {
      expected += report.ToString();
    }
  }

  // Spawn a genuinely fresh process over the same pack and diff its
  // reports.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    ::execl(g_argv0, g_argv0, "--packed-worker", pack.c_str(),
            static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed
  }
  ::close(fds[1]);
  std::string output;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fds[0], buf, sizeof buf)) > 0) {
    output.append(buf, static_cast<size_t>(n));
  }
  ::close(fds[0]);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus)) << "worker did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(wstatus), 0) << output;

  std::string marker = "\n--stats closures_built=0 snapshot_hits=3\n";
  ASSERT_NE(output.find(marker), std::string::npos) << output;
  EXPECT_EQ(output.substr(0, output.size() - marker.size()), expected);
}

}  // namespace

// Worker mode for the cross-process fixture: audit the fleet against a
// packed store and print reports + a stats marker.
int RunPackedWorker(const std::string& pack) {
  Fleet fleet = MakeFleet();
  auto store = snapshot::OpenPackedStore(pack);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  service::ServiceOptions options;
  options.threads = 2;
  options.snapshot_store = store.value();
  service::AnalysisService svc(*fleet.schema, *fleet.users, options);
  auto reports = svc.CheckBatch(fleet.sheet);
  if (!reports.ok()) {
    std::fprintf(stderr, "%s\n", reports.status().ToString().c_str());
    return 1;
  }
  for (const core::AnalysisReport& report : reports.value()) {
    std::fputs(report.ToString().c_str(), stdout);
  }
  service::ServiceStats stats = svc.Stats();
  std::printf("\n--stats closures_built=%zu snapshot_hits=%zu\n",
              stats.closures_built, stats.snapshot_hits);
  return 0;
}

}  // namespace oodbsec

int main(int argc, char** argv) {
  g_argv0 = argv[0];
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--packed-worker") {
      return oodbsec::RunPackedWorker(argv[i + 1]);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
