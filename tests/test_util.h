// Shared test helpers. ScopedTempDir replaces the hand-rolled
// mkdtemp/remove_all pairs the suites used to carry: those leaked the
// directory whenever an ASSERT bailed out of the test body before the
// trailing cleanup call ran. Tying removal to the destructor makes
// cleanup unconditional — early returns, skipped sections, and fixture
// teardown all converge on the same path.
#ifndef OODBSEC_TESTS_TEST_UTIL_H_
#define OODBSEC_TESTS_TEST_UTIL_H_

#include <stdlib.h>

#include <filesystem>
#include <string>

namespace oodbsec::test_util {

class ScopedTempDir {
 public:
  // Creates /tmp/<prefix>.XXXXXX. ok() is false (and path() empty) when
  // mkdtemp fails; callers assert on it once and use path() freely.
  explicit ScopedTempDir(const std::string& prefix = "oodbsec_test") {
    std::string templ = "/tmp/" + prefix + ".XXXXXX";
    if (::mkdtemp(templ.data()) != nullptr) path_ = templ;
  }

  ~ScopedTempDir() {
    if (path_.empty()) return;
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }

  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  bool ok() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace oodbsec::test_util

#endif  // OODBSEC_TESTS_TEST_UTIL_H_
