#include <gtest/gtest.h>

#include "common/diagnostics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"

namespace oodbsec::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arg");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad arg");
}

TEST(StatusTest, FactoriesProduceMatchingCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(PermissionDeniedError("x").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, WithContextPrependsMessage) {
  Status s = NotFoundError("no such class").WithContext("loading schema");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "loading schema: no such class");
  EXPECT_TRUE(Status::Ok().WithContext("ctx").ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  OODBSEC_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnPropagatesErrors) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(5).ok());
}

Status FailIfNegative(int x) {
  if (x < 0) return OutOfRangeError("negative");
  return Status::Ok();
}

Status CheckBoth(int a, int b) {
  OODBSEC_RETURN_IF_ERROR(FailIfNegative(a));
  OODBSEC_RETURN_IF_ERROR(FailIfNegative(b));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckBoth(1, 2).ok());
  EXPECT_FALSE(CheckBoth(-1, 2).ok());
  EXPECT_FALSE(CheckBoth(1, -2).ok());
}

TEST(StringsTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, true, '!'), "a1true!");
  EXPECT_EQ(StrCat(), "");
  EXPECT_EQ(StrCat(std::string("x"), std::string_view("y")), "xy");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x \t\n"), "x");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(StringsTest, QuoteString) {
  EXPECT_EQ(QuoteString("plain"), "\"plain\"");
  EXPECT_EQ(QuoteString("a\"b\\c\nd\te"), "\"a\\\"b\\\\c\\nd\\te\"");
}

TEST(DiagnosticsTest, CollectsAndFormats) {
  DiagnosticSink sink;
  EXPECT_FALSE(sink.has_errors());
  sink.Error({3, 7}, "unexpected token");
  sink.Warning({4, 1}, "shadowed variable");
  EXPECT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.error_count(), 1);
  EXPECT_EQ(sink.ToString(),
            "3:7: error: unexpected token\n4:1: warning: shadowed variable");
  Status status = sink.ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kParseError);
}

TEST(DiagnosticsTest, CleanSinkIsOkStatus) {
  DiagnosticSink sink;
  sink.Note({1, 1}, "informational");
  EXPECT_TRUE(sink.ToStatus().ok());
}

}  // namespace
}  // namespace oodbsec::common
