// Tests for the core analysis: capabilities, requirements, the F(F)
// closure (paper Table 2), and algorithm A(R) — including the paper's
// two worked flaws (§3.1) and the Figure 1 derivation.
#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/capability.h"
#include "core/closure.h"
#include "core/requirement.h"
#include "schema/user.h"
#include "unfold/unfolded.h"

namespace oodbsec::core {
namespace {

TEST(CapabilityTest, NamesAndParsing) {
  EXPECT_EQ(CapabilityName(Capability::kTotalInferability), "ti");
  EXPECT_EQ(CapabilityName(Capability::kPartialAlterability), "pa");
  EXPECT_EQ(ParseCapability("ti"), Capability::kTotalInferability);
  EXPECT_EQ(ParseCapability("pi"), Capability::kPartialInferability);
  EXPECT_EQ(ParseCapability("ta"), Capability::kTotalAlterability);
  EXPECT_EQ(ParseCapability("pa"), Capability::kPartialAlterability);
  EXPECT_EQ(ParseCapability("xx"), std::nullopt);
}

TEST(CapabilityTest, Implications) {
  EXPECT_TRUE(Implies(Capability::kTotalInferability,
                      Capability::kPartialInferability));
  EXPECT_TRUE(Implies(Capability::kTotalAlterability,
                      Capability::kPartialAlterability));
  EXPECT_FALSE(Implies(Capability::kPartialInferability,
                       Capability::kTotalInferability));
  EXPECT_FALSE(Implies(Capability::kTotalInferability,
                       Capability::kTotalAlterability));
  EXPECT_TRUE(IsInferability(Capability::kPartialInferability));
  EXPECT_TRUE(IsAlterability(Capability::kTotalAlterability));
}

TEST(RequirementTest, ParsesPaperExamples) {
  auto r1 = ParseRequirementString("(u, r_salary(x) : ti)");
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_EQ(r1->user, "u");
  EXPECT_EQ(r1->function, "r_salary");
  ASSERT_EQ(r1->arg_caps.size(), 1u);
  EXPECT_TRUE(r1->arg_caps[0].empty());
  EXPECT_EQ(r1->return_caps,
            (std::set<Capability>{Capability::kTotalInferability}));

  auto r2 = ParseRequirementString("(u, w_salary(a, v : pa))");
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(r2->function, "w_salary");
  ASSERT_EQ(r2->arg_caps.size(), 2u);
  EXPECT_TRUE(r2->arg_caps[0].empty());
  EXPECT_EQ(r2->arg_caps[1],
            (std::set<Capability>{Capability::kPartialAlterability}));
  EXPECT_TRUE(r2->return_caps.empty());
}

TEST(RequirementTest, MultipleCapsAndRoundTrip) {
  auto r = ParseRequirementString("(u, f(x : ti : pa, y) : pi : ta)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->capability_count(), 4u);
  auto round = ParseRequirementString(r->ToString());
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_EQ(round->ToString(), r->ToString());
}

TEST(RequirementTest, Errors) {
  EXPECT_FALSE(ParseRequirementString("").ok());
  EXPECT_FALSE(ParseRequirementString("(u)").ok());
  EXPECT_FALSE(ParseRequirementString("(u, f(x : zz))").ok());
  EXPECT_FALSE(ParseRequirementString("(u, f(x))").ok());  // vacuous
  EXPECT_FALSE(ParseRequirementString("(u, f(x) : ti) extra").ok());
}

// --- Closure tests against the paper's running example ---

std::unique_ptr<schema::Schema> BrokerSchema() {
  schema::SchemaBuilder builder;
  builder.AddClass("Broker", {{"name", "string"},
                              {"salary", "int"},
                              {"budget", "int"},
                              {"profit", "int"}});
  builder.AddFunction("checkBudget", {{"broker", "Broker"}}, "bool",
                      ">=(r_budget(broker), *(10, r_salary(broker)))");
  builder.AddFunction("calcSalary", {{"budget", "int"}, {"profit", "int"}},
                      "int", "budget / 10 + profit / 2");
  builder.AddFunction(
      "updateSalary", {{"broker", "Broker"}}, "null",
      "w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))");
  auto result = std::move(builder).Build();
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

// Figure 1 / §4.2: F = {checkBudget, w_budget} derives total
// inferability on 5:r_salary(4:broker).
TEST(ClosureTest, Figure1DerivesSalaryInferability) {
  auto schema = BrokerSchema();
  auto set = unfold::UnfoldedSet::Build(*schema, {"checkBudget", "w_budget"});
  ASSERT_TRUE(set.ok());
  Closure closure(*set.value());

  // The key conclusions of Figure 1:
  EXPECT_TRUE(closure.AreEqual(8, 1));  // =[8:o, 1:broker]
  EXPECT_TRUE(closure.AreEqual(9, 2));  // =[9:v, 2:r_budget(broker)]
  EXPECT_TRUE(closure.HasTi(2));        // ti[2:r_budget(broker)]
  EXPECT_TRUE(closure.HasPa(2));        // pa[2:r_budget(broker)]
  EXPECT_TRUE(closure.HasTi(7));        // ti[7:>=(...)] (observed result)
  EXPECT_TRUE(closure.HasTi(6));        // ti[6:*(10, r_salary(broker))]
  EXPECT_TRUE(closure.HasTi(5));        // ti[5:r_salary(broker)]  -- FLAW

  // The derivation is printable and names the leaked read.
  std::string derivation = closure.ExplainFact(closure.TiFact(5));
  EXPECT_NE(derivation.find("r_salary"), std::string::npos) << derivation;
  EXPECT_NE(derivation.find("axiom"), std::string::npos);
}

// Without w_budget the clerk cannot infer the salary: checkBudget alone
// must not derive ti on the salary read.
TEST(ClosureTest, CheckBudgetAloneDoesNotLeakSalaryTotally) {
  auto schema = BrokerSchema();
  auto set = unfold::UnfoldedSet::Build(*schema, {"checkBudget"});
  ASSERT_TRUE(set.ok());
  Closure closure(*set.value());
  EXPECT_FALSE(closure.HasTi(5));  // 5:r_salary(broker) stays protected
  EXPECT_FALSE(closure.HasPi(5));  // not even partially (budget unknown)
  // The comparison outcome itself is observed.
  EXPECT_TRUE(closure.HasTi(7));
  // Pessimism note (§4.1): the budget side is flagged as totally
  // inferable through the `10 may be 0' absorbing rule for * plus the
  // probe rule — a documented false positive of the paper's rule set.
  EXPECT_TRUE(closure.HasTi(2));
}

// Granting r_budget realizes the paper's §1 narrative: "if that clerk
// can know the amount of the budget of some broker, he can know a
// little about the salary of that broker".
TEST(ClosureTest, KnownBudgetLeaksSalaryPartially) {
  auto schema = BrokerSchema();
  auto set = unfold::UnfoldedSet::Build(*schema, {"checkBudget", "r_budget"});
  ASSERT_TRUE(set.ok());
  Closure closure(*set.value());
  EXPECT_TRUE(closure.HasPi(5));  // partial leak on 5:r_salary(broker)
  // Pessimism: the analyzer even claims a total leak — it credits the
  // user with probing the comparison by perturbing the budget read via
  // object choice, without tracking that switching brokers perturbs the
  // salary too. A documented false positive (S2 experiment); the true
  // capability without w_budget is the partial leak above.
  EXPECT_TRUE(closure.HasTi(5));
}

// Alterability flow for updateSalary: pa on budget propagates through
// calcSalary into the written salary value (paper §3.1, second flaw).
TEST(ClosureTest, UpdateSalaryAlterabilityFlow) {
  auto schema = BrokerSchema();
  auto set = unfold::UnfoldedSet::Build(*schema, {"updateSalary", "w_budget"});
  ASSERT_TRUE(set.ok());
  Closure closure(*set.value());

  // Node ids (see unfold_test): 3:r_budget(broker), 13:let(calcSalary),
  // 14:w_salary(broker, 13).
  EXPECT_TRUE(closure.HasPa(3));   // the read budget is alterable
  EXPECT_TRUE(closure.HasTa(3));   // in fact totally (w_budget grants ta)
  EXPECT_TRUE(closure.HasPa(13));  // ... through calcSalary
  const unfold::Node* write = set.value()->node(14);
  ASSERT_EQ(write->kind, unfold::NodeKind::kWriteAttr);
  EXPECT_TRUE(closure.HasPa(write->value_child()->id));
}

TEST(ClosureTest, UpdateSalaryAloneGivesOnlyPartialAlterability) {
  auto schema = BrokerSchema();
  auto set = unfold::UnfoldedSet::Build(*schema, {"updateSalary"});
  ASSERT_TRUE(set.ok());
  Closure closure(*set.value());
  // Choosing a different broker perturbs the budget read (node 3) and
  // thus the written value — but only partially...
  EXPECT_TRUE(closure.HasPa(3));
  EXPECT_TRUE(closure.HasPa(set.value()->node(14)->value_child()->id));
  // ...total control needs w_budget (the paper's §3.1 contrast).
  EXPECT_FALSE(closure.HasTa(3));
  EXPECT_FALSE(closure.HasTa(set.value()->node(14)->value_child()->id));
}

TEST(ClosureTest, ReadObjectTotalAlterabilityOption) {
  // Under the exists-D reading, object choice yields total alterability.
  auto schema = BrokerSchema();
  auto set = unfold::UnfoldedSet::Build(*schema, {"updateSalary"});
  ASSERT_TRUE(set.ok());
  ClosureOptions options;
  options.read_object_total_alterability = true;
  Closure closure(*set.value(), options);
  EXPECT_TRUE(closure.HasTa(3));
}

TEST(ClosureTest, AblationSameTypeEqualityBreaksFigure1) {
  auto schema = BrokerSchema();
  auto set = unfold::UnfoldedSet::Build(*schema, {"checkBudget", "w_budget"});
  ASSERT_TRUE(set.ok());
  ClosureOptions options;
  options.same_type_argument_equality = false;
  Closure closure(*set.value(), options);
  // Without the pessimistic equality axiom the analysis cannot connect
  // w_budget's object to checkBudget's broker, so the flaw is missed.
  EXPECT_FALSE(closure.AreEqual(8, 1));
  EXPECT_FALSE(closure.HasTi(5));
}

TEST(ClosureTest, AblationBasicRulesBreaksFigure1) {
  auto schema = BrokerSchema();
  auto set = unfold::UnfoldedSet::Build(*schema, {"checkBudget", "w_budget"});
  ASSERT_TRUE(set.ok());
  ClosureOptions options;
  options.basic_function_rules = false;
  Closure closure(*set.value(), options);
  EXPECT_FALSE(closure.HasTi(5));
}

TEST(ClosureTest, AblationWriteReadEqualityBreaksFigure1) {
  auto schema = BrokerSchema();
  auto set = unfold::UnfoldedSet::Build(*schema, {"checkBudget", "w_budget"});
  ASSERT_TRUE(set.ok());
  ClosureOptions options;
  options.write_read_equality = false;
  Closure closure(*set.value(), options);
  EXPECT_FALSE(closure.AreEqual(9, 2));
  EXPECT_FALSE(closure.HasTi(5));
}

// --- A(R) end to end ---

struct BrokerWorld {
  std::unique_ptr<schema::Schema> schema;
  std::unique_ptr<schema::UserRegistry> users;
};

BrokerWorld MakeBrokerWorld() {
  BrokerWorld world;
  world.schema = BrokerSchema();
  world.users = std::make_unique<schema::UserRegistry>(*world.schema);
  EXPECT_TRUE(world.users->AddUser("clerk").ok());
  EXPECT_TRUE(world.users->Grant("clerk", "checkBudget").ok());
  EXPECT_TRUE(world.users->Grant("clerk", "w_budget").ok());
  EXPECT_TRUE(world.users->AddUser("auditor").ok());
  EXPECT_TRUE(world.users->Grant("auditor", "checkBudget").ok());
  EXPECT_TRUE(world.users->AddUser("updater").ok());
  EXPECT_TRUE(world.users->Grant("updater", "updateSalary").ok());
  EXPECT_TRUE(world.users->Grant("updater", "w_budget").ok());
  return world;
}

TEST(AnalyzerTest, DetectsPaperFlaw1) {
  BrokerWorld world = MakeBrokerWorld();
  auto requirement = ParseRequirementString("(clerk, r_salary(x) : ti)");
  ASSERT_TRUE(requirement.ok());
  auto report =
      CheckRequirement(*world.schema, *world.users, requirement.value());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->satisfied);
  ASSERT_FALSE(report->flaws.empty());
  EXPECT_NE(report->flaws[0].derivation.find("r_salary"), std::string::npos);
  EXPECT_NE(report->ToString().find("NOT SATISFIED"), std::string::npos);
}

TEST(AnalyzerTest, AuditorWithoutWriteIsSafe) {
  BrokerWorld world = MakeBrokerWorld();
  auto requirement = ParseRequirementString("(auditor, r_salary(x) : ti)");
  ASSERT_TRUE(requirement.ok());
  auto report =
      CheckRequirement(*world.schema, *world.users, requirement.value());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->satisfied);
}

TEST(AnalyzerTest, BudgetReaderLearnsSalaryPartially) {
  // With r_budget granted, checkBudget reveals *something* about the
  // salary (§1): the pi requirement is violated even without w_budget.
  BrokerWorld world = MakeBrokerWorld();
  ASSERT_TRUE(world.users->AddUser("reader").ok());
  ASSERT_TRUE(world.users->Grant("reader", "checkBudget").ok());
  ASSERT_TRUE(world.users->Grant("reader", "r_budget").ok());
  auto partial = ParseRequirementString("(reader, r_salary(x) : pi)");
  ASSERT_TRUE(partial.ok());
  auto report =
      CheckRequirement(*world.schema, *world.users, partial.value());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->satisfied);
}

TEST(AnalyzerTest, DetectsPaperFlaw2) {
  BrokerWorld world = MakeBrokerWorld();
  auto requirement =
      ParseRequirementString("(updater, w_salary(a, v : pa))");
  ASSERT_TRUE(requirement.ok());
  auto report =
      CheckRequirement(*world.schema, *world.users, requirement.value());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->satisfied);
}

TEST(AnalyzerTest, UpdaterWithoutBudgetWriteCannotFullyControlSalary) {
  // The §3.1 contrast: with only updateSalary granted, the written
  // salary is perturbable (object choice) but not fully controllable.
  BrokerWorld world = MakeBrokerWorld();
  ASSERT_TRUE(world.users->AddUser("plain").ok());
  ASSERT_TRUE(world.users->Grant("plain", "updateSalary").ok());
  auto total = ParseRequirementString("(plain, w_salary(a, v : ta))");
  ASSERT_TRUE(total.ok());
  auto report =
      CheckRequirement(*world.schema, *world.users, total.value());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->satisfied);
  // Granting w_budget flips the verdict.
  auto flagged = ParseRequirementString("(updater, w_salary(a, v : ta))");
  ASSERT_TRUE(flagged.ok());
  auto report2 =
      CheckRequirement(*world.schema, *world.users, flagged.value());
  ASSERT_TRUE(report2.ok());
  EXPECT_FALSE(report2->satisfied);
}

TEST(AnalyzerTest, DirectGrantIsAlwaysAFlaw) {
  // If r_salary itself is granted, (u, r_salary(x) : ti) is trivially
  // violated at the direct-invocation site.
  BrokerWorld world = MakeBrokerWorld();
  ASSERT_TRUE(world.users->AddUser("root").ok());
  ASSERT_TRUE(world.users->Grant("root", "r_salary").ok());
  auto requirement = ParseRequirementString("(root, r_salary(x) : ti)");
  ASSERT_TRUE(requirement.ok());
  auto report =
      CheckRequirement(*world.schema, *world.users, requirement.value());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->satisfied);
}

TEST(AnalyzerTest, UnknownUserOrFunctionErrors) {
  BrokerWorld world = MakeBrokerWorld();
  auto r1 = ParseRequirementString("(ghost, r_salary(x) : ti)");
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(CheckRequirement(*world.schema, *world.users, r1.value()).ok());
  auto r2 = ParseRequirementString("(clerk, nothing(x) : ti)");
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(CheckRequirement(*world.schema, *world.users, r2.value()).ok());
}

TEST(AnalyzerTest, ArityMismatchRejected) {
  BrokerWorld world = MakeBrokerWorld();
  auto requirement =
      ParseRequirementString("(clerk, r_salary(x, y) : ti)");
  ASSERT_TRUE(requirement.ok());
  EXPECT_FALSE(
      CheckRequirement(*world.schema, *world.users, requirement.value())
          .ok());
}

TEST(AnalyzerTest, UserAnalysisIsReusable) {
  BrokerWorld world = MakeBrokerWorld();
  auto analysis =
      UserAnalysis::Build(*world.schema, *world.users->Find("clerk"));
  ASSERT_TRUE(analysis.ok()) << analysis.status();
  auto r1 = ParseRequirementString("(clerk, r_salary(x) : ti)");
  auto r2 = ParseRequirementString("(clerk, r_budget(x) : ti)");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  auto report1 = analysis.value()->Check(r1.value());
  auto report2 = analysis.value()->Check(r2.value());
  ASSERT_TRUE(report1.ok());
  ASSERT_TRUE(report2.ok());
  EXPECT_FALSE(report1->satisfied);
  EXPECT_FALSE(report2->satisfied);  // budget is writable hence inferable
  EXPECT_GT(report1->fact_count, 0u);
}

}  // namespace
}  // namespace oodbsec::core
