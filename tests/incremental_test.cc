// Equivalence tests for the incremental closure engine: a warm-started
// closure (seeded from a cached subset's derivation log) must derive
// exactly the same fact set as a cold run over the same roots — compared
// order-insensitively via Closure::FactSetDigest(), since the two take
// different derivation routes. Covers the stockbroker schema, randomized
// capability lists over the scaled broker schema, the session-level
// grant/revoke re-audit API, and the service's subset reuse.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/analysis_session.h"
#include "core/analyzer.h"
#include "core/closure.h"
#include "core/closure_cache.h"
#include "core/requirement.h"
#include "schema/schema.h"
#include "schema/user.h"
#include "service/analysis_service.h"
#include "unfold/unfolded.h"

namespace oodbsec::core {
namespace {

std::unique_ptr<schema::Schema> BrokerSchema() {
  schema::SchemaBuilder builder;
  builder.AddClass("Broker", {{"name", "string"},
                              {"salary", "int"},
                              {"budget", "int"},
                              {"profit", "int"}});
  builder.AddFunction("checkBudget", {{"broker", "Broker"}}, "bool",
                      ">=(r_budget(broker), *(10, r_salary(broker)))");
  builder.AddFunction("calcSalary", {{"budget", "int"}, {"profit", "int"}},
                      "int", "budget / 10 + profit / 2");
  builder.AddFunction(
      "updateSalary", {{"broker", "Broker"}}, "null",
      "w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))");
  auto result = std::move(builder).Build();
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

// The bench_static_closure scaled workload: `scale` broker departments
// over one shared class, interacting through same-type argument
// equality.
std::unique_ptr<schema::Schema> ScaledBrokerSchema(int scale) {
  schema::SchemaBuilder builder;
  std::vector<schema::SchemaBuilder::AttributeSpec> attributes;
  attributes.push_back({"name", "string"});
  for (int i = 0; i < scale; ++i) {
    attributes.push_back({common::StrCat("salary", i), "int"});
    attributes.push_back({common::StrCat("budget", i), "int"});
    attributes.push_back({common::StrCat("profit", i), "int"});
  }
  builder.AddClass("Broker", std::move(attributes));
  for (int i = 0; i < scale; ++i) {
    builder.AddFunction(
        common::StrCat("checkBudget", i), {{"broker", "Broker"}}, "bool",
        common::StrCat("r_budget", i, "(broker) >= 10 * r_salary", i,
                       "(broker)"));
    builder.AddFunction(common::StrCat("calcSalary", i),
                        {{"budget", "int"}, {"profit", "int"}}, "int",
                        "budget / 10 + profit / 2");
    builder.AddFunction(
        common::StrCat("updateSalary", i), {{"broker", "Broker"}}, "null",
        common::StrCat("w_salary", i, "(broker, calcSalary", i, "(r_budget",
                       i, "(broker), r_profit", i, "(broker)))"));
  }
  auto result = std::move(builder).Build();
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

std::unique_ptr<unfold::UnfoldedSet> Unfold(
    const schema::Schema& schema, const std::vector<std::string>& roots) {
  auto set = unfold::UnfoldedSet::Build(schema, roots);
  EXPECT_TRUE(set.ok()) << set.status();
  return std::move(set).value();
}

TEST(WarmStartTest, StockbrokerWarmMatchesColdDigest) {
  auto schema = BrokerSchema();
  auto base_set = Unfold(*schema, {"checkBudget", "w_budget"});
  Closure base(*base_set);

  std::vector<std::string> full_roots = {"checkBudget", "r_name",
                                         "updateSalary", "w_budget",
                                         "w_profit"};
  auto cold_set = Unfold(*schema, full_roots);
  Closure cold(*cold_set);
  EXPECT_FALSE(cold.warm_started());

  auto warm_set = Unfold(*schema, full_roots);
  Closure warm(*warm_set, {}, nullptr, &base);
  ASSERT_TRUE(warm.warm_started());
  EXPECT_EQ(warm.replayed_fact_count(), base.fact_count());
  EXPECT_GT(warm.fact_count(), base.fact_count());
  EXPECT_EQ(warm.FactSetDigest(), cold.FactSetDigest());
}

TEST(WarmStartTest, IncrementalGrantChainMatchesCold) {
  // Grant one function at a time, each closure warm-started from the
  // previous one; every step must agree with the cold run of its list.
  auto schema = BrokerSchema();
  std::vector<std::string> roots = {"checkBudget"};
  auto set = Unfold(*schema, roots);
  auto previous = std::make_unique<Closure>(*set);
  for (const char* grant : {"w_budget", "updateSalary", "w_profit"}) {
    roots.push_back(grant);
    std::sort(roots.begin(), roots.end());
    auto next_set = Unfold(*schema, roots);
    auto warm =
        std::make_unique<Closure>(*next_set, ClosureOptions{}, nullptr,
                                  previous.get());
    ASSERT_TRUE(warm->warm_started()) << grant;
    Closure cold(*next_set);
    EXPECT_EQ(warm->FactSetDigest(), cold.FactSetDigest()) << grant;
    previous = std::move(warm);
    // The sets must outlive their closures; keep the latest alive.
    set = std::move(next_set);
  }
}

TEST(WarmStartTest, IncompatibleBaseFallsBackToColdRun) {
  auto schema = BrokerSchema();
  auto base_set = Unfold(*schema, {"checkBudget", "w_budget"});
  Closure base(*base_set);

  // Different options: ignored base.
  auto set1 = Unfold(*schema, {"checkBudget", "updateSalary", "w_budget"});
  ClosureOptions other;
  other.pi_join_to_ti = false;
  Closure fallback1(*set1, other, nullptr, &base);
  EXPECT_FALSE(fallback1.warm_started());

  // A base root missing from the new set: ignored base, and the cold
  // result is still correct.
  auto set2 = Unfold(*schema, {"checkBudget"});
  Closure fallback2(*set2, {}, nullptr, &base);
  EXPECT_FALSE(fallback2.warm_started());
  Closure cold2(*set2);
  EXPECT_EQ(fallback2.FactSetDigest(), cold2.FactSetDigest());
  EXPECT_EQ(fallback2.fact_count(), cold2.fact_count());
}

TEST(WarmStartTest, RandomizedCapabilityListsMatchColdDigest) {
  const int kScale = 3;
  auto schema = ScaledBrokerSchema(kScale);
  std::vector<std::string> pool = {"r_name"};
  for (int i = 0; i < kScale; ++i) {
    pool.push_back(common::StrCat("checkBudget", i));
    pool.push_back(common::StrCat("updateSalary", i));
    pool.push_back(common::StrCat("w_budget", i));
    pool.push_back(common::StrCat("w_profit", i));
  }
  // Fixed seed: reproducible trials, no flakes.
  std::mt19937 rng(20260806);
  for (int trial = 0; trial < 8; ++trial) {
    std::shuffle(pool.begin(), pool.end(), rng);
    size_t base_size = 2 + rng() % (pool.size() - 3);
    size_t extra = 1 + rng() % (pool.size() - base_size);
    std::vector<std::string> base_roots(pool.begin(),
                                        pool.begin() + base_size);
    std::vector<std::string> full_roots(
        pool.begin(), pool.begin() + base_size + extra);
    std::sort(base_roots.begin(), base_roots.end());
    std::sort(full_roots.begin(), full_roots.end());

    auto base_set = Unfold(*schema, base_roots);
    Closure base(*base_set);
    auto warm_set = Unfold(*schema, full_roots);
    Closure warm(*warm_set, {}, nullptr, &base);
    ASSERT_TRUE(warm.warm_started()) << "trial " << trial;
    auto cold_set = Unfold(*schema, full_roots);
    Closure cold(*cold_set);
    EXPECT_EQ(warm.FactSetDigest(), cold.FactSetDigest())
        << "trial " << trial << ": base=" << base_size
        << " full=" << base_size + extra;
  }
}

TEST(WarmStartTest, RootIdRangesAreStableAcrossRootLists) {
  // The unfold invariant warm-start seeding relies on: a root's subtree
  // has the same width and internal offsets no matter which root list
  // contains it, and occupies [first_node_id, body->id].
  auto schema = BrokerSchema();
  auto small = Unfold(*schema, {"updateSalary"});
  auto large = Unfold(*schema, {"checkBudget", "updateSalary", "w_budget"});
  const unfold::Root* in_small = &small->roots()[0];
  const unfold::Root* in_large = nullptr;
  for (const unfold::Root& root : large->roots()) {
    if (root.function_name == "updateSalary") in_large = &root;
  }
  ASSERT_NE(in_large, nullptr);
  ASSERT_EQ(in_small->body->id - in_small->first_node_id,
            in_large->body->id - in_large->first_node_id);
  int offset = in_large->first_node_id - in_small->first_node_id;
  for (int id = in_small->first_node_id; id <= in_small->body->id; ++id) {
    EXPECT_EQ(small->node(id)->kind, large->node(id + offset)->kind);
  }
}

TEST(ClosureCacheTest, GetOrBuildPrefersWarmAndCountsStats) {
  auto schema = BrokerSchema();
  ClosureCache cache(*schema, {}, /*capacity=*/4);

  auto base = cache.GetOrBuild({"checkBudget", "w_budget"});
  ASSERT_TRUE(base.ok()) << base.status();
  EXPECT_FALSE(base.value()->closure->warm_started());
  EXPECT_EQ(cache.stats().cold_builds, 1u);

  auto bigger =
      cache.GetOrBuild({"checkBudget", "updateSalary", "w_budget"});
  ASSERT_TRUE(bigger.ok());
  EXPECT_TRUE(bigger.value()->closure->warm_started());
  EXPECT_EQ(cache.stats().warm_builds, 1u);

  // Exact repeat: served from cache, no new build.
  auto again =
      cache.GetOrBuild({"checkBudget", "updateSalary", "w_budget"});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().get(), bigger.value().get());
  EXPECT_EQ(cache.stats().exact_hits, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ClosureCacheTest, LruEvictionKeepsSharedEntriesAlive) {
  auto schema = BrokerSchema();
  ClosureCache cache(*schema, {}, /*capacity=*/2);
  auto first = cache.GetOrBuild({"checkBudget"});
  ASSERT_TRUE(first.ok());
  std::shared_ptr<const CachedAnalysis> pinned = first.value();
  ASSERT_TRUE(cache.GetOrBuild({"updateSalary"}).ok());
  ASSERT_TRUE(cache.GetOrBuild({"w_budget"}).ok());  // evicts {checkBudget}
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // The evicted entry stays valid for its holder...
  EXPECT_GT(pinned->closure->fact_count(), 0u);
  // ...and a re-request rebuilds rather than hitting the cache.
  auto rebuilt = cache.GetOrBuild({"checkBudget"});
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_NE(rebuilt.value().get(), pinned.get());
  EXPECT_EQ(rebuilt.value()->closure->FactSetDigest(),
            pinned->closure->FactSetDigest());
}

// --- session grant/revoke re-audit ---

std::unique_ptr<schema::UserRegistry> BrokerUsers(
    const schema::Schema& schema) {
  auto users = std::make_unique<schema::UserRegistry>(schema);
  EXPECT_TRUE(users->AddUser("clerk").ok());
  EXPECT_TRUE(users->Grant("clerk", "checkBudget").ok());
  return users;
}

Requirement SalaryRequirement() {
  auto requirement =
      ParseRequirementString("(clerk, r_salary(x) : ti)");
  EXPECT_TRUE(requirement.ok()) << requirement.status();
  return std::move(requirement).value();
}

TEST(SessionRecheckTest, GrantExtendsIncrementallyAndMatchesCold) {
  auto schema = BrokerSchema();
  auto users = BrokerUsers(*schema);
  AnalysisSession session(*schema, *users);

  // With checkBudget alone, the salary requirement holds.
  std::vector<Requirement> reqs = {SalaryRequirement()};
  auto before = session.RecheckRequirements(reqs);
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_TRUE(before.value()[0].satisfied);
  EXPECT_EQ(session.recheck_cache().stats().cold_builds, 1u);

  // Granting w_budget opens the Figure-1 flaw; the re-audit closure is
  // warm-started from the cached {checkBudget,...} entry.
  ASSERT_TRUE(session.AddCapability("clerk", "w_budget").ok());
  auto after = session.RecheckRequirements(reqs);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_FALSE(after.value()[0].satisfied);
  EXPECT_EQ(session.recheck_cache().stats().warm_builds, 1u);

  // The registry itself was never mutated.
  EXPECT_FALSE(users->Find("clerk")->MayInvoke("w_budget"));

  // Verdict and flaw sites agree with a cold one-shot check of the same
  // capability state.
  auto fresh_users = BrokerUsers(*schema);
  ASSERT_TRUE(fresh_users->Grant("clerk", "w_budget").ok());
  auto cold = CheckRequirement(*schema, *fresh_users, reqs[0]);
  ASSERT_TRUE(cold.ok()) << cold.status();
  ASSERT_EQ(after.value()[0].flaws.size(), cold.value().flaws.size());
  for (size_t i = 0; i < cold.value().flaws.size(); ++i) {
    EXPECT_EQ(after.value()[0].flaws[i].site_id,
              cold.value().flaws[i].site_id);
    EXPECT_EQ(after.value()[0].flaws[i].description,
              cold.value().flaws[i].description);
  }
}

TEST(SessionRecheckTest, RevokeThenRegrantReturnsToCachedFactSet) {
  auto schema = BrokerSchema();
  auto users = BrokerUsers(*schema);
  AnalysisSession session(*schema, *users);
  std::vector<Requirement> reqs = {SalaryRequirement()};

  // Cache the pre-grant state first, so the revoke below can return to
  // it without a rebuild.
  ASSERT_TRUE(session.RecheckRequirements(reqs).ok());

  ASSERT_TRUE(session.AddCapability("clerk", "w_budget").ok());
  auto granted = session.RecheckRequirements(reqs);
  ASSERT_TRUE(granted.ok());
  EXPECT_FALSE(granted.value()[0].satisfied);

  // Revoke: the pre-grant closure is still cached — exact hit, no new
  // build — and the flaw disappears again.
  ASSERT_TRUE(session.RemoveCapability("clerk", "w_budget").ok());
  uint64_t builds_before = session.recheck_cache().stats().cold_builds +
                           session.recheck_cache().stats().warm_builds;
  auto revoked = session.RecheckRequirements(reqs);
  ASSERT_TRUE(revoked.ok());
  EXPECT_TRUE(revoked.value()[0].satisfied);
  EXPECT_EQ(session.recheck_cache().stats().cold_builds +
                session.recheck_cache().stats().warm_builds,
            builds_before);

  // Re-grant: back to the cached superset entry, same verdict as the
  // first granted run.
  ASSERT_TRUE(session.AddCapability("clerk", "w_budget").ok());
  auto regranted = session.RecheckRequirements(reqs);
  ASSERT_TRUE(regranted.ok());
  EXPECT_FALSE(regranted.value()[0].satisfied);
  EXPECT_EQ(session.recheck_cache().stats().exact_hits, 2u);

  // Error paths: unknown users and non-held capabilities are rejected.
  EXPECT_FALSE(session.AddCapability("nobody", "w_budget").ok());
  EXPECT_FALSE(session.AddCapability("clerk", "no_such_function").ok());
  EXPECT_FALSE(session.RemoveCapability("clerk", "updateSalary").ok());
}

TEST(ServiceSubsetReuseTest, WarmStartsAndAgreesOnVerdicts) {
  auto schema = BrokerSchema();
  auto users = std::make_unique<schema::UserRegistry>(*schema);
  ASSERT_TRUE(users->AddUser("clerk").ok());
  ASSERT_TRUE(users->Grant("clerk", "checkBudget").ok());
  ASSERT_TRUE(users->AddUser("senior").ok());
  ASSERT_TRUE(users->Grant("senior", "checkBudget").ok());
  ASSERT_TRUE(users->Grant("senior", "w_budget").ok());

  auto clerk_req = ParseRequirementString("(clerk, r_salary(x) : ti)");
  auto senior_req = ParseRequirementString("(senior, r_salary(x) : ti)");
  ASSERT_TRUE(clerk_req.ok() && senior_req.ok());

  service::ServiceOptions service_options;
  service_options.threads = 2;
  service::AnalysisService warm_service(*schema, *users, service_options);
  // Clerk's batch caches the subset bundle; senior's bundle in the next
  // batch is a strict superset of it, so its closure warm-starts.
  // (Within a single batch, subset pairing happens against the cache as
  // of the plan phase, so cross-batch is where reuse shows up.)
  auto first = warm_service.CheckBatch({clerk_req.value()});
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(warm_service.Stats().warm_starts, 0u);
  auto second = warm_service.CheckBatch({senior_req.value()});
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(warm_service.Stats().closures_built, 2u);
  EXPECT_EQ(warm_service.Stats().warm_starts, 1u);
  std::vector<core::AnalysisReport> batch_reports;
  batch_reports.push_back(std::move(first).value()[0]);
  batch_reports.push_back(std::move(second).value()[0]);
  EXPECT_TRUE(batch_reports[0].satisfied);
  EXPECT_FALSE(batch_reports[1].satisfied);

  // Same verdicts as sequential cold checks.
  auto cold_clerk = CheckRequirement(*schema, *users, clerk_req.value());
  auto cold_senior = CheckRequirement(*schema, *users, senior_req.value());
  ASSERT_TRUE(cold_clerk.ok() && cold_senior.ok());
  EXPECT_EQ(batch_reports[0].satisfied, cold_clerk.value().satisfied);
  EXPECT_EQ(batch_reports[1].satisfied, cold_senior.value().satisfied);
  ASSERT_EQ(batch_reports[1].flaws.size(),
            cold_senior.value().flaws.size());
  for (size_t i = 0; i < cold_senior.value().flaws.size(); ++i) {
    EXPECT_EQ(batch_reports[1].flaws[i].site_id,
              cold_senior.value().flaws[i].site_id);
  }
}

// --- DRed retraction ---

TEST(RetractTest, SingleRevokeMatchesColdDigest) {
  // Retracting each root in turn from the full broker bundle must land
  // on exactly the cold fact set of the reduced list.
  auto schema = BrokerSchema();
  std::vector<std::string> full_roots = {"checkBudget", "r_name",
                                         "updateSalary", "w_budget",
                                         "w_profit"};
  auto base_set = Unfold(*schema, full_roots);
  Closure base(*base_set);

  for (const std::string& revoked : full_roots) {
    std::vector<std::string> reduced;
    for (const std::string& root : full_roots) {
      if (root != revoked) reduced.push_back(root);
    }
    auto reduced_set = Unfold(*schema, reduced);
    std::unique_ptr<Closure> shrunk =
        Closure::Retract(*reduced_set, {}, nullptr, base);
    ASSERT_NE(shrunk, nullptr) << revoked;
    EXPECT_TRUE(shrunk->retracted()) << revoked;
    EXPECT_TRUE(shrunk->warm_started()) << revoked;
    EXPECT_GT(shrunk->retracted_fact_count(), 0u) << revoked;
    EXPECT_EQ(shrunk->replayed_fact_count() + shrunk->rederived_fact_count(),
              shrunk->fact_count())
        << revoked;
    Closure cold(*reduced_set);
    EXPECT_EQ(shrunk->FactSetDigest(), cold.FactSetDigest()) << revoked;
  }
}

TEST(RetractTest, RevokeThenRegrantMatchesCold) {
  // Shrink by retraction, then grow back by warm-start from the shrunk
  // closure: both hops must agree with cold runs of their lists.
  auto schema = BrokerSchema();
  std::vector<std::string> full_roots = {"checkBudget", "updateSalary",
                                         "w_budget", "w_profit"};
  std::vector<std::string> reduced = {"checkBudget", "updateSalary",
                                      "w_profit"};
  auto full_set = Unfold(*schema, full_roots);
  Closure base(*full_set);

  auto reduced_set = Unfold(*schema, reduced);
  std::unique_ptr<Closure> shrunk =
      Closure::Retract(*reduced_set, {}, nullptr, base);
  ASSERT_NE(shrunk, nullptr);
  Closure cold_reduced(*reduced_set);
  EXPECT_EQ(shrunk->FactSetDigest(), cold_reduced.FactSetDigest());

  auto regrown_set = Unfold(*schema, full_roots);
  Closure regrown(*regrown_set, {}, nullptr, shrunk.get());
  ASSERT_TRUE(regrown.warm_started());
  EXPECT_FALSE(regrown.retracted());
  EXPECT_EQ(regrown.FactSetDigest(), base.FactSetDigest());
}

TEST(RetractTest, MultiRootDepartmentRevokeMatchesCold) {
  // Revoking a whole department (four roots at once) from the scaled
  // schema exercises multi-root cones and cross-department equalities.
  const int kScale = 3;
  auto schema = ScaledBrokerSchema(kScale);
  std::vector<std::string> full_roots = {"r_name"};
  for (int i = 0; i < kScale; ++i) {
    full_roots.push_back(common::StrCat("checkBudget", i));
    full_roots.push_back(common::StrCat("updateSalary", i));
    full_roots.push_back(common::StrCat("w_budget", i));
    full_roots.push_back(common::StrCat("w_profit", i));
  }
  auto base_set = Unfold(*schema, full_roots);
  Closure base(*base_set);

  std::vector<std::string> reduced;
  for (const std::string& root : full_roots) {
    if (root.find('1') == std::string::npos) reduced.push_back(root);
  }
  ASSERT_EQ(reduced.size(), full_roots.size() - 4);
  auto reduced_set = Unfold(*schema, reduced);
  std::unique_ptr<Closure> shrunk =
      Closure::Retract(*reduced_set, {}, nullptr, base);
  ASSERT_NE(shrunk, nullptr);
  Closure cold(*reduced_set);
  EXPECT_EQ(shrunk->FactSetDigest(), cold.FactSetDigest());
}

TEST(RetractTest, IncompatibleBaseReturnsNull) {
  auto schema = BrokerSchema();
  auto base_set = Unfold(*schema, {"checkBudget", "w_budget"});
  Closure base(*base_set);

  // Different options: the base's log is not valid under them.
  auto reduced_set = Unfold(*schema, {"checkBudget"});
  ClosureOptions other;
  other.pi_join_to_ti = false;
  EXPECT_EQ(Closure::Retract(*reduced_set, other, nullptr, base), nullptr);

  // A root the base never held: not a shrink of the base at all.
  auto foreign_set = Unfold(*schema, {"checkBudget", "updateSalary"});
  EXPECT_EQ(Closure::Retract(*foreign_set, {}, nullptr, base), nullptr);
}

TEST(ClosureCacheTest, GetOrBuildRetractsFromSupersetAndCountsStats) {
  auto schema = BrokerSchema();
  ClosureCache cache(*schema, {}, /*capacity=*/4);

  auto super =
      cache.GetOrBuild({"checkBudget", "updateSalary", "w_budget"});
  ASSERT_TRUE(super.ok()) << super.status();
  EXPECT_EQ(cache.stats().cold_builds, 1u);

  // A proper subset with enough overlap shrinks the cached superset
  // instead of building cold.
  auto shrunk = cache.GetOrBuild({"checkBudget", "w_budget"});
  ASSERT_TRUE(shrunk.ok()) << shrunk.status();
  EXPECT_TRUE(shrunk.value()->closure->retracted());
  EXPECT_EQ(cache.stats().retract_builds, 1u);
  EXPECT_EQ(cache.stats().cold_builds, 1u);

  auto cold_set = Unfold(*schema, {"checkBudget", "w_budget"});
  Closure cold(*cold_set);
  EXPECT_EQ(shrunk.value()->closure->FactSetDigest(), cold.FactSetDigest());

  // The shrunk list is now resident: an exact repeat hits it.
  auto again = cache.GetOrBuild({"checkBudget", "w_budget"});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().get(), shrunk.value().get());
  EXPECT_EQ(cache.stats().exact_hits, 1u);
}

TEST(SessionRecheckTest, RevokeUsesRetractionFastPath) {
  auto schema = BrokerSchema();
  auto users = BrokerUsers(*schema);
  AnalysisSession session(*schema, *users);
  std::vector<Requirement> reqs = {SalaryRequirement()};

  // Cache only the granted state, so the pre-grant list is NOT resident
  // and the revoke must genuinely retract rather than find it cached.
  ASSERT_TRUE(session.AddCapability("clerk", "w_budget").ok());
  auto granted = session.RecheckRequirements(reqs);
  ASSERT_TRUE(granted.ok());
  EXPECT_FALSE(granted.value()[0].satisfied);
  EXPECT_EQ(session.recheck_cache().stats().cold_builds, 1u);

  ASSERT_TRUE(session.RemoveCapability("clerk", "w_budget").ok());
  EXPECT_EQ(session.recheck_cache().stats().retract_builds, 1u);
  EXPECT_EQ(session.metrics().counter("session.retractions_fast")->value(),
            1);
  EXPECT_EQ(
      session.metrics().counter("session.retractions_fallback")->value(), 0);

  // The retracted entry serves the re-audit as an exact hit: no new
  // build of any kind, and the flaw is gone.
  auto revoked = session.RecheckRequirements(reqs);
  ASSERT_TRUE(revoked.ok());
  EXPECT_TRUE(revoked.value()[0].satisfied);
  EXPECT_EQ(session.recheck_cache().stats().cold_builds, 1u);
  EXPECT_EQ(session.recheck_cache().stats().warm_builds, 0u);
  EXPECT_GE(session.recheck_cache().stats().exact_hits, 1u);

  // A revoke whose pre-revoke closure was never built AND whose
  // post-revoke state is not cached either falls back: the next recheck
  // pays the ordinary build. (Revoking back onto a cached state — e.g.
  // straight down to {checkBudget} — would count as fast instead.)
  ASSERT_TRUE(session.AddCapability("clerk", "updateSalary").ok());
  ASSERT_TRUE(session.AddCapability("clerk", "w_budget").ok());
  ASSERT_TRUE(session.RemoveCapability("clerk", "w_budget").ok());
  EXPECT_EQ(
      session.metrics().counter("session.retractions_fallback")->value(), 1);
}

TEST(ServiceRetractTest, SubsetRequestRetractsFromCachedSuperset) {
  auto schema = BrokerSchema();
  auto users = std::make_unique<schema::UserRegistry>(*schema);
  ASSERT_TRUE(users->AddUser("clerk").ok());
  ASSERT_TRUE(users->Grant("clerk", "checkBudget").ok());
  ASSERT_TRUE(users->AddUser("senior").ok());
  ASSERT_TRUE(users->Grant("senior", "checkBudget").ok());
  ASSERT_TRUE(users->Grant("senior", "w_budget").ok());

  auto clerk_req = ParseRequirementString("(clerk, r_salary(x) : ti)");
  auto senior_req = ParseRequirementString("(senior, r_salary(x) : ti)");
  ASSERT_TRUE(clerk_req.ok() && senior_req.ok());

  service::ServiceOptions service_options;
  service_options.threads = 2;
  service::AnalysisService service(*schema, *users, service_options);
  // Senior's bundle goes in first; clerk's is then a proper subset of a
  // cached entry, so its closure is built by retraction, not cold.
  auto first = service.CheckBatch({senior_req.value()});
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first.value()[0].satisfied);
  auto second = service.CheckBatch({clerk_req.value()});
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second.value()[0].satisfied);
  EXPECT_EQ(service.Stats().closures_built, 2u);
  EXPECT_EQ(service.Stats().retract_builds, 1u);
  EXPECT_EQ(service.Stats().warm_starts, 0u);

  // Same verdict as a sequential cold check.
  auto cold_clerk = CheckRequirement(*schema, *users, clerk_req.value());
  ASSERT_TRUE(cold_clerk.ok());
  EXPECT_EQ(second.value()[0].satisfied, cold_clerk.value().satisfied);
}

// --- randomized churn (the retraction correctness gate) ---

// Cache-level churn: three simulated users' capability sets evolve by
// interleaved grant/revoke/regrant; every revoke goes through the
// retraction path (RetractEntry, falling back to GetOrBuild), every
// grant through GetOrBuild, and after EVERY op the served closure's
// digest must equal a cold rebuild of that exact root list.
TEST(RetractTest, RandomizedChurnMatchesColdDigestEveryStep) {
  const int kScale = 3;
  const int kOps = 220;
  auto schema = ScaledBrokerSchema(kScale);
  std::vector<std::string> pool = {"r_name"};
  for (int i = 0; i < kScale; ++i) {
    pool.push_back(common::StrCat("checkBudget", i));
    pool.push_back(common::StrCat("updateSalary", i));
    pool.push_back(common::StrCat("w_budget", i));
    pool.push_back(common::StrCat("w_profit", i));
  }

  ClosureCache cache(*schema, {}, /*capacity=*/16);
  // Three users with overlapping starting bundles.
  std::vector<std::vector<std::string>> held(3);
  held[0] = {"checkBudget0", "r_name", "w_budget0"};
  held[1] = {"checkBudget1", "updateSalary1", "w_profit1"};
  held[2] = {"checkBudget0", "checkBudget2", "r_name"};

  // Fixed seed: reproducible, no flakes.
  std::mt19937 rng(20260807);
  for (int op = 0; op < kOps; ++op) {
    size_t user = rng() % held.size();
    std::vector<std::string>& caps = held[user];
    std::vector<std::string> old_roots = caps;

    std::vector<std::string> absent;
    for (const std::string& fn : pool) {
      if (std::find(caps.begin(), caps.end(), fn) == caps.end()) {
        absent.push_back(fn);
      }
    }
    bool revoke = caps.size() > 1 && (absent.empty() || rng() % 2 == 0);
    if (revoke) {
      caps.erase(caps.begin() + static_cast<long>(rng() % caps.size()));
    } else {
      caps.push_back(absent[rng() % absent.size()]);
      std::sort(caps.begin(), caps.end());
    }

    std::shared_ptr<const CachedAnalysis> entry;
    if (revoke) {
      entry = cache.RetractEntry(old_roots, caps);
      if (entry == nullptr) {
        auto built = cache.GetOrBuild(caps);
        ASSERT_TRUE(built.ok()) << built.status();
        entry = built.value();
      }
    } else {
      auto built = cache.GetOrBuild(caps);
      ASSERT_TRUE(built.ok()) << built.status();
      entry = built.value();
    }

    auto cold_set = Unfold(*schema, caps);
    Closure cold(*cold_set);
    ASSERT_EQ(entry->closure->FactSetDigest(), cold.FactSetDigest())
        << "op " << op << " user " << user
        << (revoke ? " revoke" : " grant")
        << " roots=" << common::Join(caps, ",")
        << " retracted=" << entry->closure->retracted()
        << " warm=" << entry->closure->warm_started();
  }
  // The churn must actually have exercised retraction.
  EXPECT_GT(cache.stats().retract_builds, 0u);
}

// Session-level churn: the same interleaving through the public
// grant/revoke API, checking verdict agreement with a cold one-shot
// check after every op, plus the revoke accounting invariant.
TEST(SessionRecheckTest, RandomizedChurnAgreesWithColdChecks) {
  auto schema = BrokerSchema();
  std::vector<std::string> pool = {"checkBudget", "updateSalary",
                                   "w_budget", "w_profit"};
  auto users = std::make_unique<schema::UserRegistry>(*schema);
  std::vector<std::string> names = {"u0", "u1", "u2"};
  std::vector<std::vector<std::string>> held(names.size());
  for (size_t u = 0; u < names.size(); ++u) {
    ASSERT_TRUE(users->AddUser(names[u]).ok());
    ASSERT_TRUE(users->Grant(names[u], "checkBudget").ok());
    held[u] = {"checkBudget"};
  }
  AnalysisSession session(*schema, *users);

  std::mt19937 rng(20260808);
  for (int op = 0; op < 90; ++op) {
    size_t u = rng() % names.size();
    std::vector<std::string>& caps = held[u];
    std::vector<std::string> absent;
    for (const std::string& fn : pool) {
      if (std::find(caps.begin(), caps.end(), fn) == caps.end()) {
        absent.push_back(fn);
      }
    }
    bool revoke = caps.size() > 1 && (absent.empty() || rng() % 2 == 0);
    if (revoke) {
      size_t victim = rng() % caps.size();
      ASSERT_TRUE(
          session.RemoveCapability(names[u], caps[victim]).ok());
      caps.erase(caps.begin() + static_cast<long>(victim));
    } else {
      const std::string& granted = absent[rng() % absent.size()];
      ASSERT_TRUE(session.AddCapability(names[u], granted).ok());
      caps.push_back(granted);
    }

    auto req = ParseRequirementString(
        common::StrCat("(", names[u], ", r_salary(x) : ti)"));
    ASSERT_TRUE(req.ok());
    auto incremental = session.RecheckRequirements({req.value()});
    ASSERT_TRUE(incremental.ok()) << incremental.status();

    auto mirror = std::make_unique<schema::UserRegistry>(*schema);
    ASSERT_TRUE(mirror->AddUser(names[u]).ok());
    for (const std::string& cap : caps) {
      ASSERT_TRUE(mirror->Grant(names[u], cap).ok());
    }
    auto cold = CheckRequirement(*schema, *mirror, req.value());
    ASSERT_TRUE(cold.ok()) << cold.status();
    ASSERT_EQ(incremental.value()[0].satisfied, cold.value().satisfied)
        << "op " << op << " user " << names[u];
    ASSERT_EQ(incremental.value()[0].flaws.size(),
              cold.value().flaws.size())
        << "op " << op;
    for (size_t f = 0; f < cold.value().flaws.size(); ++f) {
      EXPECT_EQ(incremental.value()[0].flaws[f].site_id,
                cold.value().flaws[f].site_id);
    }
  }

  // Every revoke resolved to exactly one of the two retraction
  // outcomes, and the fast path genuinely fired.
  obs::MetricsRegistry& metrics = session.metrics();
  EXPECT_EQ(metrics.counter("session.revokes")->value(),
            metrics.counter("session.retractions_fast")->value() +
                metrics.counter("session.retractions_fallback")->value());
  EXPECT_GT(metrics.counter("session.retractions_fast")->value(), 0);
}

}  // namespace
}  // namespace oodbsec::core
