// Property-based tests: randomized invariants across the whole stack.
//
//  * parser/printer round-trip is a fixpoint for random expressions;
//  * the AST interpreter and the unfolded-tree executor agree;
//  * the closure is monotone in the capability list (more grants never
//    remove derived capabilities) — the lattice property A(R) relies on;
//  * capability implications hold everywhere in every closure
//    (ti => pi, ta => pa);
//  * the oracle never contradicts the analyzer (per-seed soundness, the
//    cheap in-tree version of experiment S1);
//  * a requirement the analyzer declares SATISFIED cannot be realized
//    by the probing attack (soundness, attack-level).
#include <gtest/gtest.h>

#include <random>

#include "attack/attacks.h"
#include "common/strings.h"
#include "core/analyzer.h"
#include "core/closure.h"
#include "exec/evaluator.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "semantics/execution.h"
#include "semantics/oracle.h"
#include "text/workspace.h"
#include "unfold/unfolded.h"

namespace oodbsec {
namespace {

using types::Value;

// --- Random expression generator (well-typed int expressions over
// variables x, y and an object parameter's attributes) ---

std::string RandomIntExpr(std::mt19937& rng, int depth) {
  auto pick = [&](int n) {
    return std::uniform_int_distribution<int>(0, n - 1)(rng);
  };
  if (depth == 0) {
    switch (pick(4)) {
      case 0:
        return "x";
      case 1:
        return "y";
      case 2:
        return std::to_string(pick(20) - 10);
      default:
        return "r_a(o)";
    }
  }
  static const char* kOps[] = {"+", "-", "*", "/", "%", "min", "max"};
  const char* op = kOps[pick(7)];
  std::string lhs = RandomIntExpr(rng, depth - 1);
  std::string rhs = RandomIntExpr(rng, depth - 1);
  if (op[0] == 'm') {  // min/max use call syntax
    return common::StrCat(op, "(", lhs, ", ", rhs, ")");
  }
  if (pick(4) == 0) {  // sometimes the paper's prefix form
    return common::StrCat(op, "(", lhs, ", ", rhs, ")");
  }
  return common::StrCat("(", lhs, " ", op, " ", rhs, ")");
}

class RoundTripProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RoundTripProperty, PrintParsePrintIsFixpoint) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    std::string source = RandomIntExpr(rng, 3);
    auto first = lang::ParseExpressionString(source);
    ASSERT_TRUE(first.ok()) << source << ": " << first.status();
    for (lang::PrintStyle style :
         {lang::PrintStyle::kInfix, lang::PrintStyle::kPrefix}) {
      std::string printed = lang::PrintExpr(*first.value(), style);
      auto second = lang::ParseExpressionString(printed);
      ASSERT_TRUE(second.ok()) << printed << ": " << second.status();
      EXPECT_EQ(lang::PrintExpr(*second.value(), style), printed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

// --- Interpreter vs unfolded-tree executor ---

class EvaluatorAgreementProperty
    : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EvaluatorAgreementProperty, AstAndUnfoldedTreesAgree) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    std::string body = RandomIntExpr(rng, 3);
    schema::SchemaBuilder builder;
    builder.AddClass("C", {{"a", "int"}});
    builder.AddFunction("f", {{"o", "C"}, {"x", "int"}, {"y", "int"}},
                        "int", body);
    auto schema = std::move(builder).Build();
    ASSERT_TRUE(schema.ok()) << body << ": " << schema.status();

    store::Database db(*schema.value());
    types::Oid obj = db.CreateObject("C").value();
    ASSERT_TRUE(
        db.WriteAttribute(obj, "a",
                          Value::Int(std::uniform_int_distribution<int>(
                              -5, 5)(rng)))
            .ok());
    int64_t x = std::uniform_int_distribution<int>(-5, 5)(rng);
    int64_t y = std::uniform_int_distribution<int>(-5, 5)(rng);
    std::vector<Value> args = {Value::Object(obj), Value::Int(x),
                               Value::Int(y)};

    // Path 1: the AST interpreter.
    exec::Evaluator evaluator(db);
    auto via_ast = evaluator.CallFunction(
        *schema.value()->FindFunction("f"), args);
    ASSERT_TRUE(via_ast.ok()) << body << ": " << via_ast.status();

    // Path 2: unfold + tree execution.
    auto set = unfold::UnfoldedSet::Build(*schema.value(), {"f"});
    ASSERT_TRUE(set.ok());
    auto execution = semantics::Execute(*set.value(), db, {args});
    ASSERT_TRUE(execution.ok()) << body << ": " << execution.status();

    EXPECT_EQ(via_ast.value(), execution->root_results[0]) << body;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorAgreementProperty,
                         ::testing::Values(7u, 17u, 27u, 37u));

// --- Closure monotonicity in the capability list ---

std::unique_ptr<schema::Schema> MonotonicitySchema() {
  schema::SchemaBuilder builder;
  builder.AddClass("C", {{"a", "int"}, {"b", "int"}});
  builder.AddFunction("cmp", {{"o", "C"}}, "bool",
                      "r_a(o) >= 2 * r_b(o)");
  builder.AddFunction("get", {{"o", "C"}}, "int", "r_a(o) + 1");
  builder.AddFunction("upd", {{"o", "C"}}, "null",
                      "w_a(o, r_b(o) * 3)");
  auto result = std::move(builder).Build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

class MonotonicityProperty
    : public ::testing::TestWithParam<std::string> {};

TEST_P(MonotonicityProperty, MoreGrantsNeverRemoveCapabilities) {
  auto schema = MonotonicitySchema();
  std::vector<std::string> base = {"cmp"};
  std::vector<std::string> extended = {"cmp", GetParam()};

  auto base_set = unfold::UnfoldedSet::Build(*schema, base);
  auto ext_set = unfold::UnfoldedSet::Build(*schema, extended);
  ASSERT_TRUE(base_set.ok());
  ASSERT_TRUE(ext_set.ok());
  core::Closure base_closure(*base_set.value());
  core::Closure ext_closure(*ext_set.value());

  // cmp is unfolded first in both sets, so its occurrence ids coincide.
  int shared = base_set.value()->node_count();
  for (int id = 1; id <= shared; ++id) {
    EXPECT_LE(base_closure.HasTa(id), ext_closure.HasTa(id)) << id;
    EXPECT_LE(base_closure.HasPa(id), ext_closure.HasPa(id)) << id;
    EXPECT_LE(base_closure.HasTi(id), ext_closure.HasTi(id)) << id;
    EXPECT_LE(base_closure.HasPi(id), ext_closure.HasPi(id)) << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Extensions, MonotonicityProperty,
                         ::testing::Values("get", "upd", "w_a", "w_b",
                                           "r_a", "r_b"));

// --- Implications hold on every occurrence of random workloads ---

class ImplicationProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ImplicationProperty, TotalImpliesPartialEverywhere) {
  std::mt19937 rng(GetParam());
  auto schema = MonotonicitySchema();
  std::vector<std::string> all = {"cmp", "get", "upd", "w_a", "r_b"};
  std::shuffle(all.begin(), all.end(), rng);
  all.resize(3);
  auto set = unfold::UnfoldedSet::Build(*schema, all);
  ASSERT_TRUE(set.ok());
  core::Closure closure(*set.value());
  for (int id = 1; id <= set.value()->node_count(); ++id) {
    if (closure.HasTa(id)) {
      EXPECT_TRUE(closure.HasPa(id)) << id;
    }
    if (closure.HasTi(id)) {
      EXPECT_TRUE(closure.HasPi(id)) << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplicationProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- Attack-level soundness ---

constexpr const char* kGuardedWorkspace = R"(
class Vault { label: string; secret: int; threshold: int; }
# The comparison uses a FIXED attribute, not a user-controlled probe...
function overThreshold(v: Vault): bool = r_secret(v) >= r_threshold(v);
user watcher can overThreshold, r_label;
object Vault { label = "gold", secret = 321, threshold = 100 }
)";

TEST(AttackSoundness, SatisfiedRequirementResistsTheProbingAttack) {
  auto workspace = text::LoadWorkspace(kGuardedWorkspace);
  ASSERT_TRUE(workspace.ok()) << workspace.status();

  // The analyzer declares the secret safe from total inference...
  auto req =
      core::ParseRequirementString("(watcher, r_secret(x) : ti)");
  ASSERT_TRUE(req.ok());
  auto report = core::CheckRequirement(*workspace->schema,
                                       *workspace->users, req.value());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->satisfied);

  // ...and indeed the probing attack has no write capability to drive:
  attack::BinarySearchConfig config;
  config.class_name = "Vault";
  config.select_attr = "label";
  config.select_value = Value::String("gold");
  config.write_fn = "w_threshold";
  config.compare_fn = "overThreshold";
  config.hi = 1000;
  auto transcript = attack::ExtractHiddenValue(
      *workspace->database, *workspace->users->Find("watcher"), config);
  EXPECT_FALSE(transcript.ok());
  EXPECT_EQ(transcript.status().code(),
            common::StatusCode::kPermissionDenied);
}

TEST(AttackSoundness, GrantingTheWriteFlipsBothVerdictAndAttack) {
  auto workspace = text::LoadWorkspace(kGuardedWorkspace);
  ASSERT_TRUE(workspace.ok());
  ASSERT_TRUE(workspace->users->Grant("watcher", "w_threshold").ok());

  auto req =
      core::ParseRequirementString("(watcher, r_secret(x) : ti)");
  ASSERT_TRUE(req.ok());
  auto report = core::CheckRequirement(*workspace->schema,
                                       *workspace->users, req.value());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->satisfied);

  attack::BinarySearchConfig config;
  config.class_name = "Vault";
  config.select_attr = "label";
  config.select_value = Value::String("gold");
  config.write_fn = "w_threshold";
  config.compare_fn = "overThreshold";
  // overThreshold tests secret >= threshold: true for SMALL probes.
  config.increasing = false;
  config.hi = 1000;
  auto transcript = attack::ExtractHiddenValue(
      *workspace->database, *workspace->users->Find("watcher"), config);
  ASSERT_TRUE(transcript.ok()) << transcript.status();
  EXPECT_EQ(transcript->inferred, Value::Int(321));
}

// --- Per-seed oracle soundness (cheap S1) ---

class OracleSoundnessProperty
    : public ::testing::TestWithParam<uint32_t> {};

TEST_P(OracleSoundnessProperty, OracleNeverBeatsTheAnalyzer) {
  // One small fixed workload; the heavy randomized sweep lives in
  // bench_soundness_oracle.
  schema::SchemaBuilder builder;
  builder.AddClass("C", {{"a", "int"}});
  builder.AddFunction("test", {{"o", "C"}, {"t", "int"}}, "bool",
                      "r_a(o) >= t");
  auto schema = std::move(builder).Build();
  ASSERT_TRUE(schema.ok());

  std::vector<std::string> caps = {"test"};
  if (GetParam() % 2 == 0) caps.push_back("w_a");

  schema::UserRegistry users(*schema.value());
  ASSERT_TRUE(users.AddUser("u").ok());
  for (const auto& cap : caps) ASSERT_TRUE(users.Grant("u", cap).ok());
  auto analysis = core::UserAnalysis::Build(*schema.value(),
                                            *users.Find("u"));
  ASSERT_TRUE(analysis.ok());

  std::vector<store::Database> dbs;
  store::Database db(*schema.value());
  types::Oid obj = db.CreateObject("C").value();
  ASSERT_TRUE(db.WriteAttribute(obj, "a",
                                Value::Int(GetParam() % 3))
                  .ok());
  dbs.push_back(std::move(db));

  types::DomainMap domains;
  domains.Set(schema.value()->pool().Int(),
              types::Domain::IntRange(schema.value()->pool().Int(), 0, 4));
  domains.Set(schema.value()->pool().Bool(),
              types::Domain::Bools(schema.value()->pool().Bool()));
  semantics::Oracle oracle(*schema.value(), caps, std::move(dbs),
                           std::move(domains));

  const core::Closure& closure = analysis.value()->closure();
  const unfold::UnfoldedSet& set = analysis.value()->set();
  for (int id = 1; id <= set.node_count(); ++id) {
    if (set.node(id)->kind != unfold::NodeKind::kReadAttr) continue;
    semantics::Target target = semantics::Oracle::TargetFor(set, id);
    auto check = [&](core::Capability cap, bool analyzer_says) {
      auto oracle_says = oracle.Can(cap, target);
      ASSERT_TRUE(oracle_says.ok());
      if (oracle_says.value()) {
        EXPECT_TRUE(analyzer_says)
            << "soundness violation at " << set.ShortLabel(id) << " cap "
            << core::CapabilityName(cap);
      }
    };
    check(core::Capability::kTotalInferability, closure.HasTi(id));
    check(core::Capability::kPartialInferability, closure.HasPi(id));
    check(core::Capability::kTotalAlterability, closure.HasTa(id));
    check(core::Capability::kPartialAlterability, closure.HasPa(id));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleSoundnessProperty,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace oodbsec
