// Tests for the semantic side: execution instances, the I(E) inference
// system (paper Table 1), and the small-scope oracle (Definitions 2-5).
#include <gtest/gtest.h>

#include "semantics/execution.h"
#include "semantics/inference.h"
#include "semantics/oracle.h"

namespace oodbsec::semantics {
namespace {

using core::Capability;
using types::Oid;
using types::Value;

std::unique_ptr<schema::Schema> BrokerSchema() {
  schema::SchemaBuilder builder;
  builder.AddClass("Broker", {{"salary", "int"}, {"budget", "int"}});
  builder.AddFunction("checkBudget", {{"broker", "Broker"}}, "bool",
                      "r_budget(broker) >= 2 * r_salary(broker)");
  builder.AddFunction("bumpSalary", {{"broker", "Broker"}, {"d", "int"}},
                      "null", "w_salary(broker, r_salary(broker) + d)");
  auto result = std::move(builder).Build();
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

store::Database OneBrokerDb(const schema::Schema& schema, int64_t salary,
                            int64_t budget) {
  store::Database db(schema);
  Oid oid = db.CreateObject("Broker").value();
  EXPECT_TRUE(db.WriteAttribute(oid, "salary", Value::Int(salary)).ok());
  EXPECT_TRUE(db.WriteAttribute(oid, "budget", Value::Int(budget)).ok());
  return db;
}

types::DomainMap SmallDomains(const schema::Schema& schema) {
  types::DomainMap domains;
  domains.Set(schema.pool().Int(),
              types::Domain::IntRange(schema.pool().Int(), 0, 3));
  domains.Set(schema.pool().Bool(),
              types::Domain::Bools(schema.pool().Bool()));
  return domains;
}

// Domains for direct I(E) tests: basic types plus the database's
// extents (the oracle derives these itself).
types::DomainMap FullDomains(const schema::Schema& schema,
                             const store::Database& db) {
  types::DomainMap domains = SmallDomains(schema);
  for (const auto& cls : schema.classes()) {
    domains.Set(cls->type(),
                types::Domain::Objects(cls->type(), db.Extent(cls->name())));
  }
  return domains;
}

// --- Execute ---

TEST(ExecutionTest, RecordsValuesInPaperNumbering) {
  auto schema = BrokerSchema();
  store::Database db = OneBrokerDb(*schema, 1, 3);
  Oid broker = db.Extent("Broker")[0];

  auto set = unfold::UnfoldedSet::Build(*schema, {"checkBudget"});
  ASSERT_TRUE(set.ok());
  // 1:broker 2:r_budget 3:2 4:broker 5:r_salary 6:* 7:>=
  auto execution = Execute(*set.value(), db, {{Value::Object(broker)}});
  ASSERT_TRUE(execution.ok()) << execution.status();
  EXPECT_EQ(execution->values[2], Value::Int(3));
  EXPECT_EQ(execution->values[3], Value::Int(2));
  EXPECT_EQ(execution->values[5], Value::Int(1));
  EXPECT_EQ(execution->values[6], Value::Int(2));
  EXPECT_EQ(execution->values[7], Value::Bool(true));
  EXPECT_EQ(execution->root_results[0], Value::Bool(true));
}

TEST(ExecutionTest, SequencesSeeEarlierWrites) {
  auto schema = BrokerSchema();
  store::Database db = OneBrokerDb(*schema, 1, 0);
  Oid broker = db.Extent("Broker")[0];

  auto set = unfold::UnfoldedSet::Build(
      *schema, {"w_budget", "checkBudget", "w_budget", "checkBudget"});
  ASSERT_TRUE(set.ok());
  auto execution = Execute(
      *set.value(), db,
      {{Value::Object(broker), Value::Int(5)},
       {Value::Object(broker)},
       {Value::Object(broker), Value::Int(1)},
       {Value::Object(broker)}});
  ASSERT_TRUE(execution.ok()) << execution.status();
  // salary=1: budget 5 >= 2 -> true; budget 1 >= 2 -> false.
  EXPECT_EQ(execution->root_results[1], Value::Bool(true));
  EXPECT_EQ(execution->root_results[3], Value::Bool(false));
  EXPECT_EQ(db.ReadAttribute(broker, "budget").value(), Value::Int(1));
}

TEST(ExecutionTest, NullReadFails) {
  auto schema = BrokerSchema();
  store::Database db(*schema);
  auto set = unfold::UnfoldedSet::Build(*schema, {"checkBudget"});
  ASSERT_TRUE(set.ok());
  auto execution = Execute(*set.value(), db, {{Value::Null()}});
  EXPECT_FALSE(execution.ok());
}

TEST(ExecutionTest, WrongArityRejected) {
  auto schema = BrokerSchema();
  store::Database db = OneBrokerDb(*schema, 1, 1);
  auto set = unfold::UnfoldedSet::Build(*schema, {"checkBudget"});
  ASSERT_TRUE(set.ok());
  EXPECT_FALSE(Execute(*set.value(), db, {}).ok());
  EXPECT_FALSE(Execute(*set.value(), db, {{}}).ok());
}

// --- I(E) ---

TEST(InferenceTest, ObservedResultAndArgumentsAreKnown) {
  auto schema = BrokerSchema();
  store::Database db = OneBrokerDb(*schema, 1, 3);
  Oid broker = db.Extent("Broker")[0];
  auto set = unfold::UnfoldedSet::Build(*schema, {"checkBudget"});
  ASSERT_TRUE(set.ok());
  auto execution = Execute(*set.value(), db, {{Value::Object(broker)}});
  ASSERT_TRUE(execution.ok());

  auto inference = SemanticInference::Build(*set.value(), *execution,
                                            FullDomains(*schema, db));
  ASSERT_TRUE(inference.ok()) << inference.status();
  // The user knows the constant, their argument, and the outcome...
  EXPECT_TRUE(inference.value()->InfersTotal(3));  // constant 2
  EXPECT_TRUE(inference.value()->InfersTotal(1));  // their broker argument
  EXPECT_TRUE(inference.value()->InfersTotal(7));  // observed result
  // ...but neither budget nor salary exactly.
  EXPECT_FALSE(inference.value()->InfersTotal(2));
  EXPECT_FALSE(inference.value()->InfersTotal(5));
  // The true outcome does prune the (budget, salary) space: with domain
  // 0..3, budget >= 2*salary rules salary=3 out entirely (max budget 3).
  EXPECT_TRUE(inference.value()->InfersPartial(5));
}

TEST(InferenceTest, WrittenValueEqualsLaterRead) {
  auto schema = BrokerSchema();
  store::Database db = OneBrokerDb(*schema, 1, 0);
  Oid broker = db.Extent("Broker")[0];
  auto set =
      unfold::UnfoldedSet::Build(*schema, {"w_budget", "checkBudget"});
  ASSERT_TRUE(set.ok());
  auto execution =
      Execute(*set.value(), db,
              {{Value::Object(broker), Value::Int(3)},
               {Value::Object(broker)}});
  ASSERT_TRUE(execution.ok());
  auto inference = SemanticInference::Build(*set.value(), *execution,
                                            FullDomains(*schema, db));
  ASSERT_TRUE(inference.ok()) << inference.status();
  // The budget read (local occurrence 5 after w_budget's 1..3:
  // 4:broker 5:r_budget ...) equals the written value v=3, which the
  // user supplied -> total inferability.
  EXPECT_TRUE(inference.value()->InfersTotal(5));
}

// --- Oracle ---

class OracleFixture : public ::testing::Test {
 protected:
  OracleFixture() : schema_(BrokerSchema()) {}

  Oracle MakeOracle(std::vector<std::string> capabilities,
                    int max_len = 2) {
    std::vector<store::Database> dbs;
    dbs.push_back(OneBrokerDb(*schema_, 1, 0));
    OracleOptions options;
    options.max_sequence_length = max_len;
    return Oracle(*schema_, std::move(capabilities), std::move(dbs),
                  SmallDomains(*schema_), options);
  }

  // Local ids within checkBudget's unfolding:
  //   1:broker 2:r_budget 3:2 4:broker 5:r_salary 6:* 7:>=
  std::unique_ptr<schema::Schema> schema_;
};

TEST_F(OracleFixture, TargetForMapsAcrossRoots) {
  auto set =
      unfold::UnfoldedSet::Build(*schema_, {"w_budget", "checkBudget"});
  ASSERT_TRUE(set.ok());
  Target t = Oracle::TargetFor(*set.value(), 5);  // second root, local 2
  EXPECT_EQ(t.function, "checkBudget");
  EXPECT_EQ(t.local_id, 2);
  Target t2 = Oracle::TargetFor(*set.value(), 2);
  EXPECT_EQ(t2.function, "w_budget");
  EXPECT_EQ(t2.local_id, 2);
}

TEST_F(OracleFixture, WriteGrantsTotalAlterabilityOnRead) {
  Oracle oracle = MakeOracle({"checkBudget", "w_budget"});
  // Target: the budget read inside checkBudget (local 2).
  auto can = oracle.Can(Capability::kTotalAlterability,
                        {"checkBudget", 2});
  ASSERT_TRUE(can.ok()) << can.status();
  EXPECT_TRUE(can.value());
}

TEST_F(OracleFixture, NoWriteNoAlterabilityOnRead) {
  Oracle oracle = MakeOracle({"checkBudget"});
  // One broker, fixed budget: the read can only ever produce one value.
  auto can = oracle.Can(Capability::kPartialAlterability,
                        {"checkBudget", 2});
  ASSERT_TRUE(can.ok()) << can.status();
  EXPECT_FALSE(can.value());
}

TEST_F(OracleFixture, ObservedComparisonIsInferable) {
  Oracle oracle = MakeOracle({"checkBudget"}, 1);
  auto can = oracle.Can(Capability::kTotalInferability, {"checkBudget", 7});
  ASSERT_TRUE(can.ok()) << can.status();
  EXPECT_TRUE(can.value());
}

TEST_F(OracleFixture, WriteMakesBudgetReadInferable) {
  Oracle oracle = MakeOracle({"checkBudget", "w_budget"});
  auto can = oracle.Can(Capability::kTotalInferability, {"checkBudget", 2});
  ASSERT_TRUE(can.ok()) << can.status();
  EXPECT_TRUE(can.value());
}

TEST_F(OracleFixture, SalaryNotTotallyInferableWithShortSequences) {
  // With budget writes and comparisons the salary *can* eventually be
  // pinned down, but length-2 sequences only bracket it: one probe
  // yields one inequality, which over domain 0..3 cannot be a singleton
  // when salary=1 and probes are budgets 0..3.
  Oracle oracle = MakeOracle({"checkBudget", "w_budget"});
  auto partial =
      oracle.Can(Capability::kPartialInferability, {"checkBudget", 5});
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_TRUE(partial.value());
}

TEST_F(OracleFixture, UniversalDatabaseVariant) {
  // The paper's forall-D reading (§3.3): with two candidate databases —
  // one whose broker has budget already over the threshold, one not —
  // a capability must be achievable from BOTH to count.
  std::vector<store::Database> dbs;
  dbs.push_back(OneBrokerDb(*schema_, 1, 0));
  dbs.push_back(OneBrokerDb(*schema_, 1, 3));
  OracleOptions options;
  options.max_sequence_length = 2;
  options.universal_database = true;
  Oracle universal(*schema_, {"checkBudget", "w_budget"}, std::move(dbs),
                   SmallDomains(*schema_), options);
  // The write-then-read inference works from any initial state: the
  // user overwrites whatever was there.
  auto robust =
      universal.Can(Capability::kTotalInferability, {"checkBudget", 2});
  ASSERT_TRUE(robust.ok()) << robust.status();
  EXPECT_TRUE(robust.value());

  // A state-dependent capability is rejected under forall-D but accepted
  // under exists-D: without any writes, the budget read's value depends
  // wholly on the initial state, so partial alterability (two reachable
  // values) holds in NO single-object database — but comparing across
  // the variants, inference still must agree. Use pa with two DBs where
  // only... each db alone gives a single reachable value, so pa fails
  // under both readings; instead contrast ti on the comparison result,
  // which holds everywhere (observation) — and pi on the salary read,
  // which needs the initial budget to be informative:
  auto everywhere =
      universal.Can(Capability::kTotalInferability, {"checkBudget", 7});
  ASSERT_TRUE(everywhere.ok());
  EXPECT_TRUE(everywhere.value());
}

TEST_F(OracleFixture, BadTargetRejected) {
  Oracle oracle = MakeOracle({"checkBudget"});
  EXPECT_FALSE(oracle.Can(Capability::kTotalInferability, {"", 0}).ok());
}

}  // namespace
}  // namespace oodbsec::semantics
