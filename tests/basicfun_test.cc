// Metarule engine tests (paper §4.1): the shipped rule catalog of
// core/basic_rules.cc is machine-checked against the quantified metarule
// conditions, evaluated extensionally over sample domains.
#include <gtest/gtest.h>

#include "basicfun/metarules.h"
#include "core/basic_rules.h"

namespace oodbsec::basicfun {
namespace {

class CatalogFixture : public ::testing::Test {
 protected:
  CatalogFixture()
      : catalog_(exec::BasicFunctionCatalog::MakeDefault(pool_)),
        domains_(DefaultSampleDomains(pool_)) {}

  const exec::BasicFunction* Fn(const char* name,
                                std::vector<const types::Type*> params) {
    const exec::BasicFunction* fn = catalog_->Find(name, params);
    EXPECT_NE(fn, nullptr) << name;
    return fn;
  }

  types::TypePool pool_;
  std::unique_ptr<exec::BasicFunctionCatalog> catalog_;
  types::DomainMap domains_;
};

// T2/M1 experiment backbone: every shipped rule for every catalog
// function passes its metarule condition over the sample domains.
TEST_F(CatalogFixture, EveryShippedRuleValidates) {
  for (const auto& fn : catalog_->functions()) {
    auto engine = MetaruleEngine::Create(*fn, domains_);
    ASSERT_TRUE(engine.ok()) << engine.status();
    for (const core::BasicRule& rule : core::RulesFor(*fn)) {
      auto verdict = engine.value()->ValidateRule(rule);
      ASSERT_TRUE(verdict.ok())
          << fn->SignatureToString() << ": " << verdict.status();
      EXPECT_TRUE(verdict.value())
          << fn->SignatureToString() << " rule failed its metarule check: "
          << rule.ToString();
    }
  }
}

TEST_F(CatalogFixture, EveryCatalogFunctionHasRules) {
  for (const auto& fn : catalog_->functions()) {
    EXPECT_FALSE(core::RulesFor(*fn).empty())
        << "no shipped rules for " << fn->SignatureToString();
  }
}

TEST_F(CatalogFixture, SweepConditions) {
  auto engine = [&](const char* name,
                    std::vector<const types::Type*> params) {
    return std::move(MetaruleEngine::Create(*Fn(name, params), domains_))
        .value();
  };
  auto ints = std::vector<const types::Type*>{pool_.Int(), pool_.Int()};

  // + sweeps through either argument; abs cannot reach negatives.
  core::BasicRule sweep0 = {"t", {core::Ta(0)}, core::Ta(core::kResultPos)};
  EXPECT_TRUE(engine("+", ints)->ValidateRule(sweep0).value());
  EXPECT_TRUE(engine("*", ints)->ValidateRule(sweep0).value());  // e2 may be 1
  EXPECT_FALSE(
      engine("abs", {pool_.Int()})->ValidateRule(sweep0).value());
  // % never covers all of int either.
  EXPECT_FALSE(engine("%", ints)->ValidateRule(sweep0).value());
}

TEST_F(CatalogFixture, AbsorbConditions) {
  auto ints = std::vector<const types::Type*>{pool_.Int(), pool_.Int()};
  core::BasicRule absorb = {"t", {core::Ti(0)}, core::Ti(core::kResultPos)};
  auto star = std::move(MetaruleEngine::Create(*Fn("*", ints), domains_))
                  .value();
  auto plus = std::move(MetaruleEngine::Create(*Fn("+", ints), domains_))
                  .value();
  // * has the absorbing 0; + has no absorbing element.
  EXPECT_TRUE(star->ValidateRule(absorb).value());
  EXPECT_FALSE(plus->ValidateRule(absorb).value());
}

TEST_F(CatalogFixture, ProbeConditions) {
  auto ints = std::vector<const types::Type*>{pool_.Int(), pool_.Int()};
  core::BasicRule probe = {"t",
                           {core::Ti(0), core::Pa(0),
                            core::Ti(core::kResultPos)},
                           core::Ti(1)};
  auto ge = std::move(MetaruleEngine::Create(*Fn(">=", ints), domains_))
                .value();
  EXPECT_TRUE(ge->ValidateRule(probe).value());
  // +'s probe also holds (it is invertible, which is stronger).
  auto plus = std::move(MetaruleEngine::Create(*Fn("+", ints), domains_))
                  .value();
  EXPECT_TRUE(plus->ValidateRule(probe).value());
}

TEST_F(CatalogFixture, InvertibilityConditions) {
  auto ints = std::vector<const types::Type*>{pool_.Int(), pool_.Int()};
  core::BasicRule invert = {
      "t", {core::Ti(core::kResultPos), core::Ti(0)}, core::Ti(1)};
  auto plus = std::move(MetaruleEngine::Create(*Fn("+", ints), domains_))
                  .value();
  EXPECT_TRUE(plus->ValidateRule(invert).value());
  // Unary backward inference: neg is injective, abs is not.
  core::BasicRule backward = {"t", {core::Ti(core::kResultPos)},
                              core::Ti(0)};
  auto neg = std::move(
                 MetaruleEngine::Create(*Fn("neg", {pool_.Int()}), domains_))
                 .value();
  auto abs = std::move(
                 MetaruleEngine::Create(*Fn("abs", {pool_.Int()}), domains_))
                 .value();
  EXPECT_TRUE(neg->ValidateRule(backward).value());
  EXPECT_FALSE(abs->ValidateRule(backward).value());
}

TEST_F(CatalogFixture, ImageCondition) {
  // abs's image is a proper subset of int; neg's is not.
  core::BasicRule image = {"t", {}, core::Pi(core::kResultPos)};
  auto abs = std::move(
                 MetaruleEngine::Create(*Fn("abs", {pool_.Int()}), domains_))
                 .value();
  auto neg = std::move(
                 MetaruleEngine::Create(*Fn("neg", {pool_.Int()}), domains_))
                 .value();
  EXPECT_TRUE(abs->ValidateRule(image).value());
  EXPECT_FALSE(neg->ValidateRule(image).value());
}

TEST_F(CatalogFixture, SynthesisFindsKeyRules) {
  auto ints = std::vector<const types::Type*>{pool_.Int(), pool_.Int()};
  auto contains = [](const std::vector<core::BasicRule>& rules,
                     const char* fragment) {
    for (const core::BasicRule& rule : rules) {
      if (rule.label.find(fragment) != std::string::npos) return true;
    }
    return false;
  };
  auto ge = std::move(MetaruleEngine::Create(*Fn(">=", ints), domains_))
                .value();
  auto ge_rules = ge->Synthesize();
  EXPECT_TRUE(contains(ge_rules, "MT-probe"));
  EXPECT_TRUE(contains(ge_rules, "MT-flip"));
  EXPECT_TRUE(contains(ge_rules, "MT-pairs"));

  auto star = std::move(MetaruleEngine::Create(*Fn("*", ints), domains_))
                  .value();
  auto star_rules = star->Synthesize();
  EXPECT_TRUE(contains(star_rules, "MT-absorb"));
  EXPECT_TRUE(contains(star_rules, "MT-sweep"));
  EXPECT_TRUE(contains(star_rules, "MT-corner"));
}

TEST_F(CatalogFixture, SynthesizedRulesValidate) {
  // Everything the synthesizer emits passes its own condition (the
  // synthesizer and validator agree).
  for (const auto& fn : catalog_->functions()) {
    auto engine = MetaruleEngine::Create(*fn, domains_);
    ASSERT_TRUE(engine.ok());
    for (const core::BasicRule& rule : engine.value()->Synthesize()) {
      auto verdict = engine.value()->ValidateRule(rule);
      ASSERT_TRUE(verdict.ok())
          << fn->SignatureToString() << ": " << verdict.status() << "\n"
          << rule.ToString();
      EXPECT_TRUE(verdict.value()) << rule.ToString();
    }
  }
}

TEST_F(CatalogFixture, MissingDomainFails) {
  types::DomainMap empty;
  auto ints = std::vector<const types::Type*>{pool_.Int(), pool_.Int()};
  EXPECT_FALSE(MetaruleEngine::Create(*Fn("+", ints), empty).ok());
}

TEST_F(CatalogFixture, UnknownShapeIsReported) {
  auto ints = std::vector<const types::Type*>{pool_.Int(), pool_.Int()};
  auto plus = std::move(MetaruleEngine::Create(*Fn("+", ints), domains_))
                  .value();
  // ta premise on the result is not a template.
  core::BasicRule weird = {"t", {core::Ta(core::kResultPos)}, core::Ta(0)};
  auto verdict = plus->ValidateRule(weird);
  EXPECT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), common::StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace oodbsec::basicfun
