// Determinism tests for the parallel closure engine: the derivation log
// a Closure produces must be byte-identical for every closure_threads
// setting — same steps in the same order, same rule labels, same
// premise lists — because snapshots, warm starts, retraction, and the
// shard parity triangle all treat the log as canonical. Covers cold
// builds (stockbroker + randomized lists over the scaled broker
// schema), warm starts, retraction, and the paper's stockbroker flaw
// report; the largest case also asserts via obs counters that the
// multi-threaded run actually took the parallel path.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/analyzer.h"
#include "core/closure.h"
#include "core/requirement.h"
#include "obs/obs.h"
#include "schema/schema.h"
#include "unfold/unfolded.h"

namespace oodbsec::core {
namespace {

std::unique_ptr<schema::Schema> BrokerSchema() {
  schema::SchemaBuilder builder;
  builder.AddClass("Broker", {{"name", "string"},
                              {"salary", "int"},
                              {"budget", "int"},
                              {"profit", "int"}});
  builder.AddFunction("checkBudget", {{"broker", "Broker"}}, "bool",
                      ">=(r_budget(broker), *(10, r_salary(broker)))");
  builder.AddFunction("calcSalary", {{"budget", "int"}, {"profit", "int"}},
                      "int", "budget / 10 + profit / 2");
  builder.AddFunction(
      "updateSalary", {{"broker", "Broker"}}, "null",
      "w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))");
  auto result = std::move(builder).Build();
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

std::unique_ptr<schema::Schema> ScaledBrokerSchema(int scale) {
  schema::SchemaBuilder builder;
  std::vector<schema::SchemaBuilder::AttributeSpec> attributes;
  attributes.push_back({"name", "string"});
  for (int i = 0; i < scale; ++i) {
    attributes.push_back({common::StrCat("salary", i), "int"});
    attributes.push_back({common::StrCat("budget", i), "int"});
    attributes.push_back({common::StrCat("profit", i), "int"});
  }
  builder.AddClass("Broker", std::move(attributes));
  for (int i = 0; i < scale; ++i) {
    builder.AddFunction(
        common::StrCat("checkBudget", i), {{"broker", "Broker"}}, "bool",
        common::StrCat("r_budget", i, "(broker) >= 10 * r_salary", i,
                       "(broker)"));
    builder.AddFunction(common::StrCat("calcSalary", i),
                        {{"budget", "int"}, {"profit", "int"}}, "int",
                        "budget / 10 + profit / 2");
    builder.AddFunction(
        common::StrCat("updateSalary", i), {{"broker", "Broker"}}, "null",
        common::StrCat("w_salary", i, "(broker, calcSalary", i, "(r_budget",
                       i, "(broker), r_profit", i, "(broker)))"));
  }
  auto result = std::move(builder).Build();
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

std::unique_ptr<unfold::UnfoldedSet> Unfold(
    const schema::Schema& schema, const std::vector<std::string>& roots) {
  auto set = unfold::UnfoldedSet::Build(schema, roots);
  EXPECT_TRUE(set.ok()) << set.status();
  return std::move(set).value();
}

ClosureOptions WithThreads(int threads) {
  ClosureOptions options;
  options.closure_threads = threads;
  return options;
}

// Flattens the full derivation log — every field of every step plus its
// resolved premise list — into one string, so EXPECT_EQ compares logs
// byte for byte and a mismatch prints the first diverging line.
std::string SerializeLog(const Closure& closure) {
  std::string out;
  const std::vector<DerivationStep>& steps = closure.steps();
  for (FactId id = 0; id < static_cast<FactId>(steps.size()); ++id) {
    const DerivationStep& step = steps[id];
    out += common::StrCat(id, ": k", static_cast<int>(step.fact.kind), " a",
                          step.fact.a, " b", step.fact.b, " o",
                          step.fact.origin.num, step.fact.origin.dir, " [",
                          step.rule, "] <-");
    for (FactId premise : closure.premises(id)) {
      out += common::StrCat(" ", premise);
    }
    out += '\n';
  }
  return out;
}

const int kThreadCounts[] = {2, 8};

TEST(ParallelClosureTest, StockbrokerLogByteIdenticalAcrossThreadCounts) {
  auto schema = BrokerSchema();
  std::vector<std::string> roots = {"checkBudget", "r_name", "updateSalary",
                                    "w_budget", "w_profit"};
  auto reference_set = Unfold(*schema, roots);
  Closure reference(*reference_set, WithThreads(1));
  std::string reference_log = SerializeLog(reference);
  ASSERT_FALSE(reference_log.empty());

  for (int threads : kThreadCounts) {
    auto set = Unfold(*schema, roots);
    Closure parallel(*set, WithThreads(threads));
    EXPECT_EQ(SerializeLog(parallel), reference_log) << threads;
    EXPECT_EQ(parallel.FactSetDigest(), reference.FactSetDigest())
        << threads;
  }
}

TEST(ParallelClosureTest, StockbrokerFlawReportStableAcrossThreadCounts) {
  // The paper's broken-broker scenario: with updateSalary granted, the
  // salary requirement must flag the same sites with the same
  // derivations no matter how many threads derived the closure.
  auto schema = BrokerSchema();
  std::vector<std::string> roots = {"checkBudget", "updateSalary",
                                    "w_budget", "w_profit"};
  auto requirement =
      ParseRequirementString("(broker, w_salary(x, y) : ta)");
  ASSERT_TRUE(requirement.ok()) << requirement.status();

  auto reference_set = Unfold(*schema, roots);
  Closure reference(*reference_set, WithThreads(1));
  auto reference_report =
      CheckAgainstClosure(*reference_set, reference, requirement.value());
  ASSERT_TRUE(reference_report.ok()) << reference_report.status();

  for (int threads : kThreadCounts) {
    auto set = Unfold(*schema, roots);
    Closure parallel(*set, WithThreads(threads));
    auto report = CheckAgainstClosure(*set, parallel, requirement.value());
    ASSERT_TRUE(report.ok()) << threads;
    EXPECT_EQ(report->ToString(), reference_report->ToString()) << threads;
  }
}

TEST(ParallelClosureTest, RandomizedListsByteIdenticalAcrossThreadCounts) {
  const int kScale = 3;
  auto schema = ScaledBrokerSchema(kScale);
  std::vector<std::string> pool = {"r_name"};
  for (int i = 0; i < kScale; ++i) {
    pool.push_back(common::StrCat("checkBudget", i));
    pool.push_back(common::StrCat("updateSalary", i));
    pool.push_back(common::StrCat("w_budget", i));
    pool.push_back(common::StrCat("w_profit", i));
  }
  // Fixed seed: reproducible trials, no flakes.
  std::mt19937 rng(20260808);
  for (int trial = 0; trial < 6; ++trial) {
    std::shuffle(pool.begin(), pool.end(), rng);
    size_t take = 3 + rng() % (pool.size() - 3);
    std::vector<std::string> roots(pool.begin(), pool.begin() + take);
    std::sort(roots.begin(), roots.end());

    auto reference_set = Unfold(*schema, roots);
    Closure reference(*reference_set, WithThreads(1));
    std::string reference_log = SerializeLog(reference);

    for (int threads : kThreadCounts) {
      auto set = Unfold(*schema, roots);
      Closure parallel(*set, WithThreads(threads));
      EXPECT_EQ(SerializeLog(parallel), reference_log)
          << "trial " << trial << " threads " << threads;
      EXPECT_EQ(parallel.FactSetDigest(), reference.FactSetDigest())
          << "trial " << trial << " threads " << threads;
    }
  }
}

TEST(ParallelClosureTest, WarmStartLogByteIdenticalAcrossThreadCounts) {
  auto schema = BrokerSchema();
  std::vector<std::string> base_roots = {"checkBudget", "w_budget"};
  std::vector<std::string> full_roots = {"checkBudget", "r_name",
                                         "updateSalary", "w_budget",
                                         "w_profit"};

  auto base_set = Unfold(*schema, base_roots);
  Closure base(*base_set, WithThreads(1));

  auto reference_set = Unfold(*schema, full_roots);
  Closure reference(*reference_set, WithThreads(1), nullptr, &base);
  ASSERT_TRUE(reference.warm_started());
  std::string reference_log = SerializeLog(reference);

  for (int threads : kThreadCounts) {
    // The warm base itself is also built in parallel: byte-identical
    // logs must survive the replay-then-continue path end to end.
    auto parallel_base_set = Unfold(*schema, base_roots);
    Closure parallel_base(*parallel_base_set, WithThreads(threads));
    auto set = Unfold(*schema, full_roots);
    Closure warm(*set, WithThreads(threads), nullptr, &parallel_base);
    ASSERT_TRUE(warm.warm_started()) << threads;
    EXPECT_EQ(SerializeLog(warm), reference_log) << threads;
    EXPECT_EQ(warm.FactSetDigest(), reference.FactSetDigest()) << threads;
  }
}

TEST(ParallelClosureTest, RetractLogByteIdenticalAcrossThreadCounts) {
  auto schema = BrokerSchema();
  std::vector<std::string> full_roots = {"checkBudget", "r_name",
                                         "updateSalary", "w_budget",
                                         "w_profit"};
  auto full_set = Unfold(*schema, full_roots);
  Closure base(*full_set, WithThreads(1));

  for (const std::string& revoked : full_roots) {
    std::vector<std::string> reduced;
    for (const std::string& root : full_roots) {
      if (root != revoked) reduced.push_back(root);
    }
    auto reference_set = Unfold(*schema, reduced);
    std::unique_ptr<Closure> reference =
        Closure::Retract(*reference_set, WithThreads(1), nullptr, base);
    ASSERT_NE(reference, nullptr) << revoked;
    std::string reference_log = SerializeLog(*reference);

    for (int threads : kThreadCounts) {
      auto set = Unfold(*schema, reduced);
      std::unique_ptr<Closure> shrunk =
          Closure::Retract(*set, WithThreads(threads), nullptr, base);
      ASSERT_NE(shrunk, nullptr) << revoked << " threads " << threads;
      EXPECT_EQ(SerializeLog(*shrunk), reference_log)
          << revoked << " threads " << threads;
      EXPECT_EQ(shrunk->FactSetDigest(), reference->FactSetDigest())
          << revoked << " threads " << threads;
    }
  }
}

TEST(ParallelClosureTest, LargeBuildTakesParallelPathAndMatches) {
  // A frontier wide enough to cross the parallel engagement threshold:
  // the obs counter proves the chunked path actually ran, and the log
  // still matches the single-threaded build byte for byte.
  const int kScale = 8;
  auto schema = ScaledBrokerSchema(kScale);
  std::vector<std::string> roots = {"r_name"};
  for (int i = 0; i < kScale; ++i) {
    roots.push_back(common::StrCat("checkBudget", i));
    roots.push_back(common::StrCat("updateSalary", i));
    roots.push_back(common::StrCat("w_budget", i));
    roots.push_back(common::StrCat("w_profit", i));
  }
  std::sort(roots.begin(), roots.end());

  auto reference_set = Unfold(*schema, roots);
  Closure reference(*reference_set, WithThreads(1));

  obs::Observability obs;
  auto set = Unfold(*schema, roots);
  Closure parallel(*set, WithThreads(8), &obs);
  EXPECT_EQ(SerializeLog(parallel), SerializeLog(reference));
  EXPECT_EQ(parallel.FactSetDigest(), reference.FactSetDigest());
  EXPECT_GT(obs.metrics.counter("closure.parallel.rounds")->value(), 0u);
  EXPECT_GT(obs.metrics.counter("closure.parallel.chunks")->value(), 0u);
}

TEST(ParallelClosureTest, AutoAndClampedThreadCountsResolve) {
  // closure_threads = 0 resolves to hardware concurrency; absurd values
  // clamp instead of exploding. Both must still match the reference.
  auto schema = BrokerSchema();
  std::vector<std::string> roots = {"checkBudget", "updateSalary",
                                    "w_budget"};
  auto reference_set = Unfold(*schema, roots);
  Closure reference(*reference_set, WithThreads(1));

  for (int threads : {0, 1024}) {
    auto set = Unfold(*schema, roots);
    Closure parallel(*set, WithThreads(threads));
    EXPECT_EQ(SerializeLog(parallel), SerializeLog(reference)) << threads;
  }
}

}  // namespace
}  // namespace oodbsec::core
