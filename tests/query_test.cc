#include <gtest/gtest.h>

#include "query/binder.h"
#include "query/capability.h"
#include "query/query_evaluator.h"
#include "query/query_parser.h"
#include "schema/user.h"
#include "store/database.h"

namespace oodbsec::query {
namespace {

using types::Oid;
using types::Value;

std::unique_ptr<schema::Schema> PersonSchema() {
  schema::SchemaBuilder builder;
  builder.AddClass(
      "Person", {{"name", "string"}, {"age", "int"}, {"child", "{Person}"}});
  builder.AddFunction("profile", {{"x", "Person"}}, "string",
                      "concat(r_name(x), \" (profile)\")");
  auto result = std::move(builder).Build();
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

std::unique_ptr<schema::Schema> BrokerSchema() {
  schema::SchemaBuilder builder;
  builder.AddClass("Broker",
                   {{"name", "string"}, {"salary", "int"}, {"budget", "int"}});
  builder.AddFunction("checkBudget", {{"broker", "Broker"}}, "bool",
                      "r_budget(broker) >= 10 * r_salary(broker)");
  auto result = std::move(builder).Build();
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

Oid MakePerson(store::Database& db, const std::string& name, int64_t age) {
  Oid oid = db.CreateObject("Person").value();
  EXPECT_TRUE(db.WriteAttribute(oid, "name", Value::String(name)).ok());
  EXPECT_TRUE(db.WriteAttribute(oid, "age", Value::Int(age)).ok());
  return oid;
}

TEST(QueryParserTest, ParsesPaperExample) {
  auto result = ParseQueryString(
      "select r_name(p), profile(p) from p in Person where r_age(p) > 20");
  ASSERT_TRUE(result.ok()) << result.status();
  const SelectQuery& query = *result.value();
  EXPECT_EQ(query.items.size(), 2u);
  EXPECT_EQ(query.bindings.size(), 1u);
  EXPECT_EQ(query.bindings[0].var, "p");
  EXPECT_NE(query.where, nullptr);
}

TEST(QueryParserTest, ParsesNestedSelect) {
  auto result = ParseQueryString(
      "select (select r_name(q) from q in r_child(p)) "
      "from p in Person where r_name(p) == \"John\"");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result.value()->items.size(), 1u);
  EXPECT_NE(result.value()->items[0].subquery, nullptr);
}

TEST(QueryParserTest, ToStringRoundTrips) {
  const char* source =
      "select r_name(p) from p in Person where (r_age(p) > 20)";
  auto first = ParseQueryString(source);
  ASSERT_TRUE(first.ok());
  auto second = ParseQueryString(first.value()->ToString());
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first.value()->ToString(), second.value()->ToString());
}

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseQueryString("select from p in P").ok());
  EXPECT_FALSE(ParseQueryString("select 1").ok());              // no from
  EXPECT_FALSE(ParseQueryString("select 1 from in P").ok());    // no var
  EXPECT_FALSE(ParseQueryString("select 1 from p P").ok());     // no 'in'
  EXPECT_FALSE(ParseQueryString("select 1 from p in P where").ok());
  EXPECT_FALSE(ParseQueryString("select 1 from p in P extra").ok());
}

TEST(BinderTest, ResolvesClassExtentSource) {
  auto schema = PersonSchema();
  auto query = ParseQueryString("select r_age(p) from p in Person");
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(BindQuery(*query.value(), *schema).ok());
  EXPECT_EQ(query.value()->bindings[0].class_name, "Person");
  EXPECT_EQ(query.value()->bindings[0].element_type,
            schema->FindClass("Person")->type());
  EXPECT_TRUE(query.value()->bound);
}

TEST(BinderTest, ResolvesSetExpressionSource) {
  auto schema = PersonSchema();
  auto query = ParseQueryString(
      "select r_name(q) from p in Person, q in r_child(p)");
  ASSERT_TRUE(query.ok());
  auto status = BindQuery(*query.value(), *schema);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_TRUE(query.value()->bindings[1].class_name.empty());
  EXPECT_EQ(query.value()->bindings[1].element_type,
            schema->FindClass("Person")->type());
}

TEST(BinderTest, RejectsNonSetSource) {
  auto schema = PersonSchema();
  auto query = ParseQueryString("select 1 from p in Person, q in r_age(p)");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(BindQuery(*query.value(), *schema).ok());
}

TEST(BinderTest, RejectsUnknownSource) {
  auto schema = PersonSchema();
  auto query = ParseQueryString("select 1 from p in Nowhere");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(BindQuery(*query.value(), *schema).ok());
}

TEST(BinderTest, RejectsNonBoolWhere) {
  auto schema = PersonSchema();
  auto query = ParseQueryString("select 1 from p in Person where r_age(p)");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(BindQuery(*query.value(), *schema).ok());
}

TEST(BinderTest, RejectsMultiItemSubquery) {
  auto schema = PersonSchema();
  auto query = ParseQueryString(
      "select (select r_name(q), r_age(q) from q in r_child(p)) "
      "from p in Person");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(BindQuery(*query.value(), *schema).ok());
}

TEST(QueryEvaluatorTest, SelectWithWhere) {
  auto schema = PersonSchema();
  store::Database db(*schema);
  MakePerson(db, "Ann", 30);
  MakePerson(db, "Bob", 15);
  MakePerson(db, "Cy", 45);

  auto query = ParseQueryString(
      "select r_name(p), profile(p) from p in Person where r_age(p) > 20");
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(BindQuery(*query.value(), *schema).ok());

  QueryEvaluator evaluator(db, nullptr);
  auto result = evaluator.Run(*query.value());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0][0], Value::String("Ann"));
  EXPECT_EQ(result->rows[0][1], Value::String("Ann (profile)"));
  EXPECT_EQ(result->rows[1][0], Value::String("Cy"));
}

TEST(QueryEvaluatorTest, NestedChildQueryMatchesPaperExample) {
  auto schema = PersonSchema();
  store::Database db(*schema);
  Oid john = MakePerson(db, "John", 50);
  Oid kid1 = MakePerson(db, "Kim", 12);
  Oid kid2 = MakePerson(db, "Lee", 9);
  ASSERT_TRUE(db.WriteAttribute(
                    john, "child",
                    Value::Set({Value::Object(kid1), Value::Object(kid2)}))
                  .ok());

  auto query = ParseQueryString(
      "select (select r_name(q) from q in r_child(p)) "
      "from p in Person where r_name(p) == \"John\"");
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(BindQuery(*query.value(), *schema).ok());

  QueryEvaluator evaluator(db, nullptr);
  auto result = evaluator.Run(*query.value());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0],
            Value::Set({Value::String("Kim"), Value::String("Lee")}));
}

TEST(QueryEvaluatorTest, ProbingQuerySideEffectsInOrder) {
  // The paper's probing query (§3.1): writes interleave with reads.
  auto schema = BrokerSchema();
  store::Database db(*schema);
  Oid john = db.CreateObject("Broker").value();
  ASSERT_TRUE(db.WriteAttribute(john, "name", Value::String("John")).ok());
  ASSERT_TRUE(db.WriteAttribute(john, "salary", Value::Int(0)).ok());

  auto query = ParseQueryString(
      "select w_budget(b, 1), checkBudget(b), w_budget(b, 0), checkBudget(b) "
      "from b in Broker where r_name(b) == \"John\"");
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(BindQuery(*query.value(), *schema).ok());

  QueryEvaluator evaluator(db, nullptr);
  auto result = evaluator.Run(*query.value());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  // salary = 0: budget 1 >= 0 -> true; budget 0 >= 0 -> true.
  EXPECT_EQ(result->rows[0],
            (std::vector<Value>{Value::Null(), Value::Bool(true),
                                Value::Null(), Value::Bool(true)}));
  // The final write persists.
  EXPECT_EQ(db.ReadAttribute(john, "budget").value(), Value::Int(0));
}

TEST(QueryEvaluatorTest, EnforcesCapabilities) {
  auto schema = BrokerSchema();
  schema::UserRegistry registry(*schema);
  ASSERT_TRUE(registry.AddUser("clerk").ok());
  ASSERT_TRUE(registry.Grant("clerk", "checkBudget").ok());
  ASSERT_TRUE(registry.Grant("clerk", "r_name").ok());

  store::Database db(*schema);
  db.CreateObject("Broker").value();

  auto allowed = ParseQueryString("select checkBudget(b) from b in Broker");
  ASSERT_TRUE(allowed.ok());
  ASSERT_TRUE(BindQuery(*allowed.value(), *schema).ok());
  QueryEvaluator evaluator(db, registry.Find("clerk"));
  EXPECT_TRUE(evaluator.Run(*allowed.value()).ok());

  auto denied = ParseQueryString("select r_salary(b) from b in Broker");
  ASSERT_TRUE(denied.ok());
  ASSERT_TRUE(BindQuery(*denied.value(), *schema).ok());
  auto result = evaluator.Run(*denied.value());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kPermissionDenied);
}

TEST(QueryEvaluatorTest, CollectInvokedFunctions) {
  auto schema = BrokerSchema();
  auto query = ParseQueryString(
      "select w_budget(b, 1), checkBudget(b) from b in Broker "
      "where r_name(b) == \"J\"");
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(BindQuery(*query.value(), *schema).ok());
  EXPECT_EQ(CollectInvokedFunctions(*query.value()),
            (std::set<std::string>{"w_budget", "checkBudget", "r_name"}));
}

TEST(QueryEvaluatorTest, UnboundQueryRejected) {
  auto schema = BrokerSchema();
  store::Database db(*schema);
  auto query = ParseQueryString("select 1 from b in Broker");
  ASSERT_TRUE(query.ok());
  QueryEvaluator evaluator(db, nullptr);
  EXPECT_FALSE(evaluator.Run(*query.value()).ok());
}

TEST(QueryEvaluatorTest, EmptyExtentYieldsNoRows) {
  auto schema = BrokerSchema();
  store::Database db(*schema);
  auto query = ParseQueryString("select r_name(b) from b in Broker");
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(BindQuery(*query.value(), *schema).ok());
  QueryEvaluator evaluator(db, nullptr);
  EXPECT_TRUE(evaluator.Run(*query.value())->rows.empty());
}

}  // namespace
}  // namespace oodbsec::query
